// Tests for the K80 GPU performance model.
#include <gtest/gtest.h>

#include "baselines/cpu_spmv.h"
#include "baselines/k80.h"
#include "sparse/convert.h"
#include "sparse/generators.h"

namespace serpens::baselines {
namespace {

TEST(K80, FunctionalMatchesCpuReference)
{
    const K80Model k80;
    const auto a = sparse::to_csr(sparse::make_uniform_random(80, 90, 1000, 1));
    std::vector<float> x(90, 0.5f), y(80, 1.0f);
    const std::vector<float> got = k80.spmv(a, x, y, 2.0f, 1.0f);
    std::vector<float> expect(y);
    spmv_csr(a, x, expect, 2.0f, 1.0f);
    EXPECT_EQ(got, expect);
}

TEST(K80, TrafficBytesFormula)
{
    // nnz*8 + (rows+1)*4 + cols*4 + rows*8
    EXPECT_EQ(K80Model::traffic_bytes(10, 20, 100),
              100u * 8 + 11u * 4 + 20u * 4 + 10u * 8);
}

TEST(K80, OverheadDominatesSmallMatrices)
{
    // Figure 3 bottom-left: at NNZ = 1000 the K80 lands around
    // 0.01-0.1 GFLOP/s (launch overhead + unsaturated bandwidth).
    const K80Model k80;
    const double ms = k80.estimate_spmv_ms(100, 100, 1000);
    EXPECT_GT(ms, 0.015);  // at least the launch overhead
    const double gflops = 2.0 * 1000.0 / (ms * 1e6);
    EXPECT_GT(gflops, 0.005);
    EXPECT_LT(gflops, 0.3);
}

TEST(K80, ThroughputRisesWithNnz)
{
    const K80Model k80;
    double prev_tput = 0.0;
    for (std::uint64_t nnz : {1'000ull, 10'000ull, 100'000ull, 1'000'000ull,
                              10'000'000ull, 100'000'000ull}) {
        const std::uint64_t n = std::max<std::uint64_t>(100, nnz / 50);
        const double ms = k80.estimate_spmv_ms(n, n, nnz);
        const double gflops = 2.0 * static_cast<double>(nnz) / (ms * 1e6);
        EXPECT_GT(gflops, prev_tput) << "nnz " << nnz;
        prev_tput = gflops;
    }
}

TEST(K80, PeakThroughputNearPaper)
{
    // The paper's K80 peaks at 29.1 GFLOP/s on the largest SuiteSparse
    // matrices (~89M nnz). The model must peak in that neighbourhood.
    const K80Model k80;
    const double ms = k80.estimate_spmv_ms(2'000'000, 2'000'000, 89'306'020);
    const double gflops = 2.0 * 89'306'020.0 / (ms * 1e6);
    EXPECT_GT(gflops, 22.0);
    EXPECT_LT(gflops, 34.0);
}

TEST(K80, EffectiveBandwidthSaturates)
{
    const K80Model k80;
    const double bw_small = k80.effective_bandwidth_gbps(1'000, 0.0);
    const double bw_mid = k80.effective_bandwidth_gbps(1'000'000, 0.0);
    const double bw_large = k80.effective_bandwidth_gbps(100'000'000, 0.0);
    EXPECT_LT(bw_small, bw_mid);
    EXPECT_LT(bw_mid, bw_large);
    // Asymptote: eff_max * board peak.
    EXPECT_LT(bw_large, 0.27 * 480.0 + 1.0);
    EXPECT_GT(bw_large, 0.27 * 480.0 * 0.98);
}

TEST(K80, RowImbalanceHurts)
{
    const K80Model k80;
    const double balanced = k80.estimate_spmv_ms(100'000, 100'000, 5'000'000, 0.0);
    const double skewed = k80.estimate_spmv_ms(100'000, 100'000, 5'000'000, 2.0);
    EXPECT_GT(skewed, balanced);
}

TEST(K80, ImbalancePenaltyIsClamped)
{
    const K80Model k80;
    const double cv3 = k80.effective_bandwidth_gbps(1'000'000, 3.0);
    const double cv30 = k80.effective_bandwidth_gbps(1'000'000, 30.0);
    EXPECT_DOUBLE_EQ(cv3, cv30);
}

TEST(K80, SerpensWinsAtGeomeanScale)
{
    // The architectural claim behind Fig. 3 / §4.3: on a mid-size matrix
    // (~1M nnz), Serpens' streaming pipeline beats csrmv's effective
    // bandwidth. Serpens ideal at 1M nnz ~ 1M/128 cycles @223 MHz ~ 35 us
    // (+ overheads); K80 ~ 8MB / ~90 GB/s + 15us ~ 105 us.
    const K80Model k80;
    const double k80_ms = k80.estimate_spmv_ms(50'000, 50'000, 1'000'000);
    EXPECT_GT(k80_ms, 0.070);
}

TEST(K80, ConfigValidation)
{
    K80Config c;
    c.eff_max = 0.0;
    EXPECT_THROW(K80Model{c}, std::invalid_argument);
    c = {};
    c.half_saturation_nnz = 0.0;
    EXPECT_THROW(K80Model{c}, std::invalid_argument);
}

} // namespace
} // namespace serpens::baselines
