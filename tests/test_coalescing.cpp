// Tests for the index-coalescing optimization (paper §3.4): capacity
// doubling, conflict-granularity change, and its performance trade-off.
#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "encode/image.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "baselines/cpu_spmv.h"

namespace serpens {
namespace {

using encode::EncodeParams;
using sparse::CooMatrix;

TEST(Coalescing, DoublesRowCapacityEverywhere)
{
    for (unsigned ha : {1u, 2u, 8u, 16u, 24u}) {
        EncodeParams on;
        on.ha_channels = ha;
        EncodeParams off = on;
        off.coalescing = false;
        EXPECT_EQ(on.row_capacity(), 2 * off.row_capacity()) << "HA " << ha;
    }
}

TEST(Coalescing, EnablesMatricesRowDirectCannotHold)
{
    EncodeParams p;
    p.ha_channels = 1;
    p.urams_per_pe = 1;
    p.uram_depth = 16;  // row-direct capacity 128; coalesced 256
    const CooMatrix m = sparse::make_diagonal(200);

    EXPECT_NO_THROW(encode::encode_matrix(m, p));
    p.coalescing = false;
    EXPECT_THROW(encode::encode_matrix(m, p), CapacityError);
}

TEST(Coalescing, PairConflictsAreStricterThanRowConflicts)
{
    // A two-row dense matrix: with coalescing, rows 0 and 1 share one URAM
    // address, so *all* elements conflict; without, the two rows interleave
    // freely. The coalesced schedule must be strictly longer.
    CooMatrix m(2, 256);
    for (sparse::index_t c = 0; c < 256; ++c) {
        m.add(0, c, 1.0f);
        m.add(1, c, 1.0f);
    }
    EncodeParams p;
    p.ha_channels = 1;
    p.window = 256;
    p.dsp_latency = 8;

    const auto coalesced = encode::encode_matrix(m, p);
    p.coalescing = false;
    const auto direct = encode::encode_matrix(m, p);

    EXPECT_GT(coalesced.stats().padding_slots, direct.stats().padding_slots);
    // Coalesced: 512 elements through one address = (512-1)*8+1 slots on
    // one PE.
    EXPECT_GE(coalesced.segment_depth(0), 511u * 8 + 1);
}

TEST(Coalescing, FunctionalResultsIdentical)
{
    // Coalescing is a storage optimization; results must agree bit-for-bit
    // on exact-valued data.
    const CooMatrix m = sparse::make_uniform_random(
        300, 300, 5000, 5, sparse::ValueOptions{.exact_values = true});
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.arch.ha_channels = 2;
    cfg.arch.window = 128;

    std::vector<float> x(300, 1.0f), y(300, 0.0f);

    const core::Accelerator on(cfg);
    cfg.arch.coalescing = false;
    const core::Accelerator off(cfg);

    const auto ry_on = on.run(on.prepare(m), x, y).y;
    const auto ry_off = off.run(off.prepare(m), x, y).y;
    EXPECT_EQ(ry_on, ry_off);
}

TEST(Coalescing, UramWordsHalvedOnFriendlyMatrix)
{
    // The point of coalescing: the same rows occupy half the URAM words.
    // Count distinct addresses touched per PE via the decoded image.
    EncodeParams p;
    p.ha_channels = 1;
    p.window = 1024;
    const CooMatrix m = sparse::make_banded(1024, 4, 3);

    const auto img_on = encode::encode_matrix(m, p);
    p.coalescing = false;
    const auto img_off = encode::encode_matrix(m, p);

    const auto count_addrs = [](const encode::SerpensImage& img) {
        std::set<std::pair<unsigned, std::uint32_t>> addrs;
        for (unsigned ch = 0; ch < img.channels(); ++ch) {
            for (const auto& line : img.channel(ch).lines()) {
                for (unsigned lane = 0; lane < 8; ++lane) {
                    const auto e =
                        encode::EncodedElement::from_bits(line.lane64(lane));
                    if (e.valid())
                        addrs.insert({ch * 8 + lane, e.pair_addr()});
                }
            }
        }
        return addrs.size();
    };

    const std::size_t on_words = count_addrs(img_on);
    const std::size_t off_words = count_addrs(img_off);
    EXPECT_EQ(on_words, 512u);    // 1024 rows as 512 pairs
    EXPECT_EQ(off_words, 1024u);  // one word per row
}

} // namespace
} // namespace serpens
