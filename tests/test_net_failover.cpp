// net::FailoverClient lockdown: endpoint failover, the per-endpoint
// circuit breaker's open/half-open/close lifecycle, and seed-for-seed
// determinism of the whole failover sequence.
//
// Dead endpoints are real dead ports (bound, then closed, so nothing
// listens there), and daemon death is a real net::Daemon being stopped —
// no mocks, the breaker sees the same ECONNREFUSED a production client
// would.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/daemon.h"
#include "net/failover.h"
#include "net/framing.h"
#include "serve/server.h"
#include "sparse/generators.h"

namespace serpens {
namespace {

constexpr int kTimeoutMs = 10'000;

// A port with nothing listening: bind ephemeral, read the number, close.
// Connects to it fail fast with ECONNREFUSED.
std::uint16_t dead_port()
{
    std::uint16_t port = 0;
    net::Socket listener = net::listen_tcp(0, &port);
    return port;  // listener closes on return: nothing listens here now
}

// Fast, deterministic policy: no jitter, short cooldowns, so tests pin
// exact counter values without racing timers.
net::FailoverPolicy fast_policy()
{
    net::FailoverPolicy p;
    p.retry.max_attempts = 2;
    p.retry.initial_backoff_ms = 0.2;
    p.retry.jitter = 0.0;
    p.failure_threshold = 2;
    p.cooldown_ms = 20.0;
    p.max_cooldown_ms = 200.0;
    p.jitter = 0.0;
    return p;
}

struct Fixture {
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    serve::Server server;
    std::unique_ptr<net::Daemon> daemon;

    Fixture() : server(cfg)
    {
        server.registry().admit("m", sparse::make_banded(200, 4, 51));
        daemon = std::make_unique<net::Daemon>(server, /*port=*/0);
    }
    ~Fixture() { stop(); }

    std::uint16_t port() const { return daemon->port(); }
    void stop()
    {
        if (daemon) {
            daemon->stop();
            daemon.reset();
        }
    }
    // A fresh daemon over the SAME server (residents survive), on a new
    // ephemeral port unless one is given.
    void restart(std::uint16_t fixed_port = 0)
    {
        stop();
        daemon = std::make_unique<net::Daemon>(server, fixed_port);
    }
};

std::vector<float> ones(std::size_t n)
{
    return std::vector<float>(n, 1.0f);
}

TEST(NetFailover, ParsesEndpointLists)
{
    const auto one = net::parse_endpoints("127.0.0.1:7070");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].host, "127.0.0.1");
    EXPECT_EQ(one[0].port, 7070);

    const auto two = net::parse_endpoints("a:1,b:65535");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[1].host, "b");
    EXPECT_EQ(two[1].port, 65535);

    EXPECT_THROW(net::parse_endpoints(""), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoints("host"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoints("host:"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoints(":7070"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoints("a:1,,b:2"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoints("a:0"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoints("a:99999"), std::invalid_argument);
    EXPECT_THROW(net::parse_endpoints("a:7x"), std::invalid_argument);
}

TEST(NetFailover, PolicyIsValidatedUpFront)
{
    const std::vector<net::Endpoint> eps{{"127.0.0.1", 1}};
    EXPECT_THROW(net::FailoverClient({}, kTimeoutMs),
                 std::invalid_argument);
    net::FailoverPolicy zero = fast_policy();
    zero.failure_threshold = 0;
    EXPECT_THROW(net::FailoverClient(eps, kTimeoutMs, zero),
                 std::invalid_argument);
    net::FailoverPolicy wild = fast_policy();
    wild.jitter = 2.0;
    EXPECT_THROW(net::FailoverClient(eps, kTimeoutMs, wild),
                 std::invalid_argument);
}

TEST(NetFailover, FailsOverToTheSecondEndpointWhenTheFirstIsDead)
{
    Fixture fx;
    const std::vector<net::Endpoint> eps{
        {"127.0.0.1", dead_port()},  // primary: nothing listening
        {"127.0.0.1", fx.port()},
    };
    net::FailoverClient client(eps, kTimeoutMs, fast_policy());

    const net::SpmvReply r =
        client.spmv("m", ones(200), ones(200), 1.0f, 0.0f);
    EXPECT_EQ(r.y.size(), 200u);
    EXPECT_EQ(client.stats().failovers, 1u);
    EXPECT_EQ(client.current_endpoint().port, fx.port());
    EXPECT_EQ(client.stats().giveups, 0u);

    // The cursor is sticky: the next op goes straight to the healthy
    // endpoint, no re-probe of the dead primary.
    EXPECT_NO_THROW(client.ping());
    EXPECT_EQ(client.stats().failovers, 1u);
}

TEST(NetFailover, BreakerOpensAfterThresholdAndProbesHalfOpen)
{
    Fixture fx;
    const std::uint16_t port = fx.port();
    const std::vector<net::Endpoint> eps{{"127.0.0.1", port}};
    net::FailoverPolicy policy = fast_policy();
    policy.max_rounds = 2;
    net::FailoverClient client(eps, kTimeoutMs, policy);

    EXPECT_NO_THROW(client.ping());
    fx.stop();

    // One op = two failed rounds = failure_threshold: the breaker opens.
    EXPECT_THROW(client.ping(), net::NetError);
    EXPECT_EQ(client.stats().breaker_opens, 1u);
    // The next op finds the breaker open, waits out the cooldown, probes
    // half-open against the still-dead endpoint, and the failed probe
    // re-opens with an escalated cooldown — real traffic never went out.
    EXPECT_THROW(client.ping(), net::NetError);
    EXPECT_GE(client.stats().probes, 1u);
    EXPECT_GE(client.stats().probe_failures, 1u);
    const std::uint64_t opens_before = client.stats().breaker_opens;

    // Daemon comes back on the SAME port (SO_REUSEADDR): the next op must
    // wait out the cooldown, send a successful half-open probe, close the
    // breaker, and complete.
    fx.restart(port);
    const net::SpmvReply r =
        client.spmv("m", ones(200), ones(200), 1.0f, 0.0f);
    EXPECT_EQ(r.y.size(), 200u);
    EXPECT_GE(client.stats().probes, 1u);
    EXPECT_EQ(client.stats().breaker_opens, opens_before);
    EXPECT_EQ(client.stats().giveups, 2u);  // only the two dead-daemon ops

    // Closed again: ops flow without further probes.
    const std::uint64_t probes_after = client.stats().probes;
    EXPECT_NO_THROW(client.ping());
    EXPECT_EQ(client.stats().probes, probes_after);
}

TEST(NetFailover, AllEndpointsDeadGivesUpWithTheLastError)
{
    net::FailoverPolicy policy = fast_policy();
    policy.max_rounds = 3;
    const std::vector<net::Endpoint> eps{{"127.0.0.1", dead_port()},
                                         {"127.0.0.1", dead_port()}};
    net::FailoverClient client(eps, kTimeoutMs, policy);
    EXPECT_THROW(client.ping(), net::NetError);
    EXPECT_EQ(client.stats().giveups, 1u);
    EXPECT_GE(client.stats().breaker_opens, 2u);  // both endpoints opened
}

TEST(NetFailover, SameSeedReplaysTheSameFailoverSequence)
{
    // Two identical runs against the same dead endpoints must produce
    // byte-identical counters: every sleep and every cursor move comes
    // from seeded streams, so the chaos schedule is replayable.
    const std::uint16_t dead1 = dead_port();
    const std::uint16_t dead2 = dead_port();
    const auto run_once = [&](std::uint64_t seed) {
        net::FailoverPolicy policy = fast_policy();
        policy.jitter = 0.5;  // jitter ON — determinism must not rely on 0
        policy.retry.jitter = 0.5;
        policy.seed = seed;
        policy.retry.seed = seed * 31337;
        policy.max_rounds = 3;
        net::FailoverClient client(
            {{"127.0.0.1", dead1}, {"127.0.0.1", dead2}}, kTimeoutMs,
            policy);
        EXPECT_THROW(client.ping(), net::NetError);
        return std::tuple(client.stats().failovers,
                          client.stats().breaker_opens,
                          client.stats().probes,
                          client.stats().probe_failures,
                          client.total_retries());
    };
    EXPECT_EQ(run_once(9), run_once(9));
}

TEST(NetFailover, RemoteErrorPassesThroughWithoutFailover)
{
    Fixture fx;
    const std::vector<net::Endpoint> eps{
        {"127.0.0.1", fx.port()},
        {"127.0.0.1", dead_port()},
    };
    net::FailoverClient client(eps, kTimeoutMs, fast_policy());
    // The daemon answered (unknown matrix): failing over would just get
    // the same rejection later, so the error surfaces immediately and the
    // breaker stays closed.
    EXPECT_THROW(
        (void)client.spmv("ghost", ones(200), ones(200), 1.0f, 0.0f),
        net::RemoteError);
    EXPECT_EQ(client.stats().failovers, 0u);
    EXPECT_EQ(client.stats().breaker_opens, 0u);

    EXPECT_NO_THROW(client.admit("m2", sparse::make_banded(100, 3, 52)));
    EXPECT_TRUE(client.evict("m2"));
    EXPECT_FALSE(client.evict("m2"));
}

} // namespace
} // namespace serpens
