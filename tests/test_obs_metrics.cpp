// obs::MetricsRegistry lockdown: Prometheus exposition is golden-testable
// byte-for-byte (families render in registration order, samples in
// label-insertion order), the structural validator rejects the corruptions
// --check-snapshot must catch, the export_* bridges surface every serving
// component (including per-channel utilization for each resident), and a
// kMetrics wire scrape of a live daemon round-trips valid text.
//
// Also pins the LatencyHistogram sanitize contract: a NaN/negative/inf
// sample still counts (bucket 0) but can never poison sum/max/mean.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/daemon.h"
#include "net/failover.h"
#include "net/retry.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/latency.h"
#include "serve/server.h"
#include "sparse/generators.h"
#include "util/fault.h"
#include "util/rng.h"

namespace serpens {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (float& f : v)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

bool valid(const std::string& text)
{
    std::string err;
    const bool ok = obs::validate_prometheus_text(text, &err);
    EXPECT_TRUE(ok) << err;
    return ok;
}

TEST(ObsMetrics, PrometheusGoldenCounterGauge)
{
    obs::MetricsRegistry reg;
    reg.counter("serpens_test_total", "A counter.", 3);
    reg.counter("serpens_test_total", "A counter.", 5, {{"kind", "b"}});
    reg.gauge("serpens_test_ratio", "A gauge.", 0.5);

    // Registration order, label-insertion order, integral values without a
    // decimal point, trailing newline: the exact bytes are the contract
    // (the deterministic-trace CI check diffs this text).
    const std::string golden =
        "# HELP serpens_test_total A counter.\n"
        "# TYPE serpens_test_total counter\n"
        "serpens_test_total 3\n"
        "serpens_test_total{kind=\"b\"} 5\n"
        "# HELP serpens_test_ratio A gauge.\n"
        "# TYPE serpens_test_ratio gauge\n"
        "serpens_test_ratio 0.5\n";
    EXPECT_EQ(reg.prometheus_text(), golden);
    valid(golden);
}

TEST(ObsMetrics, HistogramExposesCumulativeBucketsAndInf)
{
    serve::LatencyHistogram h;
    h.record(0.5);
    h.record(3.0);

    obs::MetricsRegistry reg;
    reg.histogram("serpens_test_ms", "A histogram.", h);
    const std::string text = reg.prometheus_text();
    valid(text);

    // 0.5 ms lands in the (0.256, 0.512] octave, 3.0 ms in (2.048, 4.096];
    // buckets are cumulative so the later edge already counts both.
    EXPECT_NE(text.find("serpens_test_ms_bucket{le=\"0.512\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("serpens_test_ms_bucket{le=\"4.096\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("serpens_test_ms_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("serpens_test_ms_sum 3.5\n"), std::string::npos);
    EXPECT_NE(text.find("serpens_test_ms_count 2\n"), std::string::npos);
}

TEST(ObsMetrics, UpsertRefreshesSamplesInPlace)
{
    obs::MetricsRegistry reg;
    reg.counter("serpens_test_total", "A counter.", 3);
    reg.gauge("serpens_test_ratio", "A gauge.", 0.5);
    // A second scrape writes fresh values into the SAME samples — set
    // semantics, not increments, and no duplicate families/lines.
    reg.counter("serpens_test_total", "A counter.", 9);
    reg.gauge("serpens_test_ratio", "A gauge.", 0.25);

    const std::string text = reg.prometheus_text();
    valid(text);
    EXPECT_NE(text.find("serpens_test_total 9\n"), std::string::npos);
    EXPECT_EQ(text.find("serpens_test_total 3\n"), std::string::npos);
    EXPECT_NE(text.find("serpens_test_ratio 0.25\n"), std::string::npos);
    // One # TYPE line per family, not one per upsert.
    const std::size_t first = text.find("# TYPE serpens_test_total");
    EXPECT_EQ(text.find("# TYPE serpens_test_total", first + 1),
              std::string::npos);
}

TEST(ObsMetrics, TypeConflictThrows)
{
    obs::MetricsRegistry reg;
    reg.counter("serpens_test_total", "A counter.", 3);
    EXPECT_THROW(reg.gauge("serpens_test_total", "Now a gauge?", 1.0),
                 std::invalid_argument);
    serve::LatencyHistogram h;
    EXPECT_THROW(reg.histogram("serpens_test_total", "Now a histogram?", h),
                 std::invalid_argument);
}

TEST(ObsMetrics, ValidatorRejectsCorruption)
{
    obs::MetricsRegistry reg;
    reg.counter("serpens_test_total", "A counter.", 3);
    serve::LatencyHistogram h;
    h.record(1.0);
    reg.histogram("serpens_test_ms", "A histogram.", h);
    const std::string good = reg.prometheus_text();
    ASSERT_TRUE(valid(good));
    std::string err;

    // Missing trailing newline.
    EXPECT_FALSE(obs::validate_prometheus_text(
        good.substr(0, good.size() - 1), &err));

    // Empty and sample-free documents.
    EXPECT_FALSE(obs::validate_prometheus_text("", &err));
    EXPECT_FALSE(obs::validate_prometheus_text(
        "# HELP serpens_x_total X.\n# TYPE serpens_x_total counter\n", &err));

    // Orphan sample with no preceding # HELP / # TYPE.
    EXPECT_FALSE(
        obs::validate_prometheus_text("serpens_orphan_total 1\n", &err));

    // Non-numeric sample value.
    std::string bad = good;
    const std::size_t vpos = bad.find("serpens_test_total 3\n");
    ASSERT_NE(vpos, std::string::npos);
    bad.replace(vpos, 21, "serpens_test_total x\n");
    EXPECT_FALSE(obs::validate_prometheus_text(bad, &err));

    // Histogram family whose +Inf bucket line was lost.
    bad = good;
    const std::size_t inf = bad.find("serpens_test_ms_bucket{le=\"+Inf\"}");
    ASSERT_NE(inf, std::string::npos);
    const std::size_t inf_end = bad.find('\n', inf);
    bad.erase(inf, inf_end - inf + 1);
    EXPECT_FALSE(obs::validate_prometheus_text(bad, &err));

    // Metric name with an illegal character.
    bad = good;
    const std::size_t name = bad.find("serpens_test_total 3");
    bad.replace(name, 18, "serpens-test-total");
    EXPECT_FALSE(obs::validate_prometheus_text(bad, &err));
}

TEST(ObsMetrics, ExportServerAndChannelUtilization)
{
    const auto m = sparse::make_uniform_random(600, 600, 8'000, 11);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m0", m);
    std::vector<float> x = random_vec(600, 1);
    std::vector<float> y = random_vec(600, 2);
    server.spmv("m0", std::move(x), std::move(y), 1.0f, 0.0f);

    obs::MetricsRegistry reg;
    obs::export_server_metrics(reg, server.stats());
    obs::export_registry_metrics(reg, server.registry());
    const std::string text = reg.prometheus_text();
    valid(text);

    EXPECT_NE(text.find("serpens_serve_requests_total 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("serpens_serve_batches_total 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("serpens_registry_residents 1\n"), std::string::npos);
    EXPECT_NE(text.find("serpens_serve_batch_width_total{width=\"1\"} 1\n"),
              std::string::npos);
    // Per-channel utilization appears for EVERY channel of the resident,
    // labelled by (matrix, channel) in that order.
    const unsigned channels = core::SerpensConfig::a16().arch.ha_channels;
    for (unsigned c = 0; c < channels; ++c) {
        const std::string sample = "serpens_channel_utilization{matrix=\"m0"
                                   "\",channel=\"" +
                                   std::to_string(c) + "\"} ";
        EXPECT_NE(text.find(sample), std::string::npos) << sample;
    }
    // Utilization is a share of the stall-inclusive depth: (0, 1].
    std::size_t pos = 0;
    unsigned seen = 0;
    while ((pos = text.find("serpens_channel_utilization{", pos)) !=
           std::string::npos) {
        const std::size_t sp = text.find("} ", pos);
        ASSERT_NE(sp, std::string::npos);
        const double v = std::strtod(text.c_str() + sp + 2, nullptr);
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 1.0);
        pos = sp;
        ++seen;
    }
    EXPECT_EQ(seen, channels);
}

TEST(ObsMetrics, WireMetricsScrapeIsValidPrometheusText)
{
    const auto a = sparse::make_uniform_random(400, 400, 5'000, 21);
    const auto b = sparse::make_uniform_random(300, 300, 4'000, 22);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    serve::Server server(cfg);
    net::Daemon daemon(server, /*port=*/0);
    net::Client client("127.0.0.1", daemon.port(), /*timeout_ms=*/30'000);
    client.admit("m0", a);
    client.admit("m1", b);
    std::vector<float> x = random_vec(400, 3);
    std::vector<float> y = random_vec(400, 4);
    client.spmv("m0", x, y, 1.0f, 0.0f);
    // The reply is sent before the dispatcher's round bookkeeping lands;
    // drain() returns only once the round is fully retired, so the scrape
    // below reads settled counters.
    server.drain();

    const std::string text = client.metrics_text();
    daemon.stop();
    valid(text);
    EXPECT_NE(text.find("serpens_uptime_ms "), std::string::npos);
    EXPECT_NE(text.find("serpens_serve_requests_total 1\n"),
              std::string::npos);
    // Both residents expose their channel breakdown in one scrape.
    EXPECT_NE(text.find("serpens_channel_utilization{matrix=\"m0\","),
              std::string::npos);
    EXPECT_NE(text.find("serpens_channel_utilization{matrix=\"m1\","),
              std::string::npos);
}

TEST(ObsMetrics, ExportRetryFailoverFaultCoverage)
{
    net::RetryStats retry;
    retry.attempts = 7;
    retry.retries = 3;
    retry.reconnects = 2;
    retry.giveups = 1;
    net::FailoverStats fo;
    fo.failovers = 4;
    fo.breaker_opens = 2;
    fo.probes = 5;
    fo.probe_failures = 1;
    fo.giveups = 0;
    util::FaultInjector inj(99);
    inj.arm("net.drop", 1.0);
    EXPECT_TRUE(inj.should_fire("net.drop"));

    obs::MetricsRegistry reg;
    obs::export_retry_metrics(reg, retry);
    obs::export_failover_metrics(reg, fo);
    obs::export_fault_metrics(reg, inj);
    const std::string text = reg.prometheus_text();
    valid(text);
    EXPECT_NE(text.find("serpens_client_attempts_total 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("serpens_client_giveups_total 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("serpens_failover_moves_total 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("serpens_failover_breaker_opens_total 2\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("serpens_fault_probes_total{site=\"net.drop\"} 1\n"),
        std::string::npos);
    EXPECT_NE(text.find("serpens_fault_fired_total{site=\"net.drop\"} 1\n"),
              std::string::npos);
}

TEST(ObsMetrics, LatencyHistogramSanitizesBadSamples)
{
    serve::LatencyHistogram h;
    h.record(2.0);
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.record(-1.0);
    h.record(std::numeric_limits<double>::infinity());

    // Every bad sample still counts (bucket 0), but none of them poisons
    // the running sum/max — mean and max stay finite forever after.
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.buckets()[0], 3u);
    EXPECT_DOUBLE_EQ(h.max_ms(), 2.0);
    EXPECT_DOUBLE_EQ(h.mean_ms(), 0.5);
    EXPECT_TRUE(std::isfinite(h.quantile_ms(0.99)));

    obs::MetricsRegistry reg;
    reg.histogram("serpens_test_ms", "A histogram.", h);
    valid(reg.prometheus_text());
}

} // namespace
} // namespace serpens
