// Capacity and error-path tests across the stack: every user-visible limit
// must fail loudly with a typed exception, never corrupt state.
#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "encode/image.h"
#include "sparse/generators.h"

namespace serpens {
namespace {

using core::Accelerator;
using core::SerpensConfig;
using encode::EncodeParams;
using sparse::CooMatrix;

TEST(Capacity, PaperConfigsHoldTable3Matrices)
{
    // A16 capacity (3.1M rows) must hold every Table 3 matrix; the largest
    // is ogbn_products at 2.45M rows.
    const SerpensConfig a16 = SerpensConfig::a16();
    EXPECT_GE(a16.arch.row_capacity(), 2'450'000u);
    const SerpensConfig a24 = SerpensConfig::a24();
    EXPECT_GE(a24.arch.row_capacity(), a16.arch.row_capacity());
}

TEST(Capacity, ExactBoundary)
{
    EncodeParams p;
    p.ha_channels = 1;
    p.urams_per_pe = 1;
    p.uram_depth = 8;  // capacity = 2 * 8 * 1 * 8 = 128
    ASSERT_EQ(p.row_capacity(), 128u);
    EXPECT_NO_THROW(encode::encode_matrix(sparse::make_diagonal(128), p));
    EXPECT_THROW(encode::encode_matrix(sparse::make_diagonal(129), p),
                 CapacityError);
}

TEST(Capacity, ErrorMessageIsActionable)
{
    EncodeParams p;
    p.ha_channels = 1;
    p.urams_per_pe = 1;
    p.uram_depth = 8;
    try {
        encode::encode_matrix(sparse::make_diagonal(500), p);
        FAIL() << "expected CapacityError";
    } catch (const CapacityError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("500"), std::string::npos);  // actual rows
        EXPECT_NE(what.find("128"), std::string::npos);  // capacity
    }
}

TEST(Capacity, ColumnsAreUnlimitedBySegmentation)
{
    // Columns stream through W-sized segments, so arbitrarily wide matrices
    // encode fine (only rows are capacity-bound).
    EncodeParams p;
    p.ha_channels = 1;
    p.window = 64;
    CooMatrix wide(16, 1'000'000);
    wide.add(3, 999'999, 1.0f);
    wide.add(0, 0, 2.0f);
    const auto img = encode::encode_matrix(wide, p);
    EXPECT_EQ(img.num_segments(), serpens::ceil_div<sparse::index_t>(1'000'000, 64));
}

TEST(Capacity, PreparedMatrixSurvivesAcceleratorScope)
{
    // PreparedMatrix owns its image; using it after the source CooMatrix is
    // gone must be safe.
    const Accelerator acc([] {
        SerpensConfig c = SerpensConfig::a16();
        c.arch.ha_channels = 1;
        c.arch.window = 64;
        return c;
    }());
    std::unique_ptr<core::PreparedMatrix> prepared;
    {
        const CooMatrix m = sparse::make_diagonal(64, 2.0f);
        prepared = std::make_unique<core::PreparedMatrix>(acc.prepare(m));
    }
    const std::vector<float> x(64, 1.0f), y(64, 0.0f);
    const auto r = acc.run(*prepared, x, y);
    for (float v : r.y)
        EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(Capacity, ChannelBoundsValidated)
{
    EncodeParams p;
    p.ha_channels = 29;  // 29 + 3 vector channels > 32 HBM channels
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Capacity, WindowBoundsValidated)
{
    EncodeParams p;
    p.window = 16384 + 16;  // beyond the 14-bit col_off field
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p.window = 16384;
    EXPECT_NO_THROW(p.validate());
}

TEST(Capacity, AddressFieldBoundsValidated)
{
    EncodeParams p;
    p.urams_per_pe = 8;
    p.uram_depth = 4096;  // 32768 = exactly the 15-bit field: OK
    EXPECT_NO_THROW(p.validate());
    p.urams_per_pe = 9;   // 36864 > 32768: must reject
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

} // namespace
} // namespace serpens
