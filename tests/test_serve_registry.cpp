// serve::MatrixRegistry lockdown: byte-accounted admission, LRU eviction
// at the budget boundary, re-admission re-encoding, the admit_image path,
// and PreparedMatrix::memory_footprint_bytes itself (the number every
// budget decision is made with).
#include <gtest/gtest.h>

#include "encode/serialize.h"
#include "serve/registry.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

#include <sstream>

namespace serpens {
namespace {

core::SerpensConfig config_with_budget(std::uint64_t budget)
{
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.resident_budget_bytes = budget;
    return cfg;
}

sparse::CooMatrix small_matrix(std::uint64_t seed)
{
    return sparse::make_uniform_random(1024, 1024, 20'000, seed);
}

// Footprint of `m` admitted under this config (encode + warm decode).
std::uint64_t footprint_of(const sparse::CooMatrix& m)
{
    const core::Accelerator acc(core::SerpensConfig::a16());
    const core::PreparedMatrix prepared = acc.prepare(m);
    prepared.warm_decode();
    return prepared.memory_footprint_bytes();
}

TEST(ServeRegistry, FootprintCountsImageAndDecodeCache)
{
    const core::Accelerator acc(core::SerpensConfig::a16());
    const auto prepared = acc.prepare(small_matrix(1));

    const std::uint64_t image_only = prepared.memory_footprint_bytes();
    EXPECT_EQ(image_only, prepared.image().memory_bytes());
    EXPECT_GT(image_only, 0u);
    // The packed lines alone already bound it from below.
    std::uint64_t line_bytes = 0;
    for (unsigned c = 0; c < prepared.image().channels(); ++c)
        line_bytes += prepared.image().channel(c).bytes();
    EXPECT_GE(image_only, line_bytes);

    prepared.warm_decode();
    const std::uint64_t with_decode = prepared.memory_footprint_bytes();
    EXPECT_EQ(with_decode,
              prepared.image().memory_bytes() +
                  prepared.decoded().memory_bytes());
    EXPECT_GT(with_decode, image_only);
}

TEST(ServeRegistry, AdmissionWarmsDecodeAndAccounts)
{
    serve::MatrixRegistry reg(config_with_budget(0));
    const auto resident = reg.admit("a", small_matrix(2));
    ASSERT_NE(resident, nullptr);
    // Admission pays the decode up front: hits never build the expansion.
    EXPECT_TRUE(resident->decode_cached());
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.bytes_resident(), resident->memory_footprint_bytes());

    const auto hit = reg.get("a");
    EXPECT_EQ(hit.get(), resident.get());
    EXPECT_EQ(reg.get("missing"), nullptr);

    const auto stats = reg.stats();
    EXPECT_EQ(stats.admissions, 1u);
    EXPECT_EQ(stats.encodes, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(ServeRegistry, LruEvictionAtBudgetBoundary)
{
    const sparse::CooMatrix a = small_matrix(3);
    const sparse::CooMatrix b = small_matrix(4);
    const sparse::CooMatrix c = small_matrix(5);
    const std::uint64_t fa = footprint_of(a);
    const std::uint64_t fb = footprint_of(b);
    const std::uint64_t fc = footprint_of(c);

    // Room for exactly two of the three (they are near-identical in size).
    serve::MatrixRegistry reg(config_with_budget(fa + fb + fc / 2));
    reg.admit("a", a);
    reg.admit("b", b);
    EXPECT_EQ(reg.size(), 2u);

    // Touch a so b becomes the LRU victim.
    ASSERT_NE(reg.get("a"), nullptr);
    reg.admit("c", c);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.get("b"), nullptr);
    ASSERT_NE(reg.get("a"), nullptr);
    ASSERT_NE(reg.get("c"), nullptr);
    EXPECT_EQ(reg.stats().evictions, 1u);
    EXPECT_EQ(reg.stats().replacements, 0u);
    EXPECT_LE(reg.bytes_resident(), reg.budget_bytes());

    // MRU-first listing.
    const auto names = reg.resident_names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "c");
    EXPECT_EQ(names[1], "a");
}

TEST(ServeRegistry, ExactBudgetAdmitsAndOversizeThrows)
{
    const sparse::CooMatrix a = small_matrix(6);
    const std::uint64_t fa = footprint_of(a);

    serve::MatrixRegistry exact(config_with_budget(fa));
    EXPECT_NE(exact.admit("a", a), nullptr);
    EXPECT_EQ(exact.bytes_resident(), fa);

    serve::MatrixRegistry tight(config_with_budget(fa - 1));
    EXPECT_THROW(tight.admit("a", a), std::invalid_argument);
    EXPECT_EQ(tight.size(), 0u);
    EXPECT_EQ(tight.bytes_resident(), 0u);
    // A rejected admission counts nothing — encodes stays in sync with
    // admissions.
    EXPECT_EQ(tight.stats().encodes, 0u);
    EXPECT_EQ(tight.stats().admissions, 0u);
}

TEST(ServeRegistry, ReAdmissionReEncodesIdentically)
{
    const sparse::CooMatrix a = small_matrix(7);
    const sparse::CooMatrix b = small_matrix(8);
    const std::uint64_t fa = footprint_of(a);
    const std::uint64_t fb = footprint_of(b);
    serve::MatrixRegistry reg(config_with_budget(std::max(fa, fb) + fb / 2));

    const auto first = reg.admit("a", a);
    Rng rng(99);
    std::vector<float> x(a.cols()), y(a.rows(), 0.0f);
    for (float& v : x)
        v = rng.next_float(-1.0f, 1.0f);
    const auto r1 = reg.accelerator().run(*first, x, y, 1.5f, 0.0f);

    // b evicts a; re-admitting a must pay encode again and still produce
    // bit-identical results (the in-flight handle keeps working meanwhile).
    reg.admit("b", b);
    EXPECT_EQ(reg.get("a"), nullptr);
    EXPECT_EQ(reg.stats().evictions, 1u);
    EXPECT_EQ(reg.stats().replacements, 0u);
    const auto again = reg.admit("a", a);
    EXPECT_NE(again.get(), first.get());
    EXPECT_EQ(reg.stats().encodes, 3u);

    const auto r2 = reg.accelerator().run(*again, x, y, 1.5f, 0.0f);
    const auto r_old = reg.accelerator().run(*first, x, y, 1.5f, 0.0f);
    ASSERT_EQ(r1.y.size(), r2.y.size());
    for (std::size_t i = 0; i < r1.y.size(); ++i) {
        EXPECT_EQ(float_bits(r1.y[i]), float_bits(r2.y[i])) << i;
        EXPECT_EQ(float_bits(r1.y[i]), float_bits(r_old.y[i])) << i;
    }
}

TEST(ServeRegistry, SameNameReplaces)
{
    serve::MatrixRegistry reg(config_with_budget(0));
    const auto v1 = reg.admit("m", small_matrix(9));
    const auto v2 = reg.admit("m", small_matrix(10));
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_NE(v1.get(), v2.get());
    EXPECT_EQ(reg.get("m").get(), v2.get());
    // The name never left the resident set: this is a replacement, not an
    // eviction. The old accounting charged evictions here, which made
    // capacity-pressure dashboards read phantom budget churn.
    EXPECT_EQ(reg.stats().evictions, 0u);
    EXPECT_EQ(reg.stats().replacements, 1u);
    EXPECT_EQ(reg.stats().admissions, 2u);
    EXPECT_EQ(reg.bytes_resident(), v2->memory_footprint_bytes());
}

TEST(ServeRegistry, ExplicitEvict)
{
    serve::MatrixRegistry reg(config_with_budget(0));
    reg.admit("m", small_matrix(11));
    EXPECT_TRUE(reg.evict("m"));
    EXPECT_FALSE(reg.evict("m"));
    // The failed second evict charges nothing.
    EXPECT_EQ(reg.stats().evictions, 1u);
    EXPECT_EQ(reg.stats().replacements, 0u);
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.bytes_resident(), 0u);
}

TEST(ServeRegistry, AdmitImageMatchesCooAdmission)
{
    const sparse::CooMatrix m = small_matrix(12);

    serve::MatrixRegistry reg(config_with_budget(0));
    const auto from_coo = reg.admit("coo", m);

    // Round-trip the image through the serializer — the --load-image
    // workflow — and admit the loaded bytes.
    std::stringstream buffer;
    encode::save_image(buffer, from_coo->image());
    const auto from_img = reg.admit_image("img", encode::load_image(buffer));
    EXPECT_TRUE(from_img->decode_cached());
    EXPECT_EQ(from_img->memory_footprint_bytes(),
              from_coo->memory_footprint_bytes());

    Rng rng(55);
    std::vector<float> x(m.cols()), y(m.rows());
    for (float& v : x)
        v = rng.next_float(-1.0f, 1.0f);
    for (float& v : y)
        v = rng.next_float(-1.0f, 1.0f);
    const auto ra = reg.accelerator().run(*from_coo, x, y, 0.75f, 1.25f);
    const auto rb = reg.accelerator().run(*from_img, x, y, 0.75f, 1.25f);
    ASSERT_EQ(ra.y.size(), rb.y.size());
    for (std::size_t i = 0; i < ra.y.size(); ++i)
        EXPECT_EQ(float_bits(ra.y[i]), float_bits(rb.y[i])) << i;

    // encode() was paid once — the image admission skipped it.
    EXPECT_EQ(reg.stats().encodes, 1u);
    EXPECT_EQ(reg.stats().admissions, 2u);
}

TEST(ServeRegistry, AdmitImageRejectsWrongChannelCount)
{
    const sparse::CooMatrix m = small_matrix(13);
    const core::Accelerator a24(core::SerpensConfig::a24());
    const auto prepared = a24.prepare(m);
    std::stringstream buffer;
    encode::save_image(buffer, prepared.image());

    serve::MatrixRegistry reg(config_with_budget(0));  // A16 registry
    EXPECT_THROW(reg.admit_image("m", encode::load_image(buffer)),
                 std::invalid_argument);
}

} // namespace
} // namespace serpens
