// Tests for metrics, statistics helpers, and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/metrics.h"
#include "analysis/stats.h"
#include "analysis/table.h"

namespace serpens::analysis {
namespace {

TEST(Metrics, FromRunBasics)
{
    // 1M nnz in 1 ms: 1 GTEPS = 1000 MTEPS, 2 GFLOP/s.
    const Metrics m = Metrics::from_run(1'000'000, 1.0, 273.0, 48.0);
    EXPECT_DOUBLE_EQ(m.exec_ms, 1.0);
    EXPECT_DOUBLE_EQ(m.mteps, 1000.0);
    EXPECT_DOUBLE_EQ(m.gflops, 2.0);
    EXPECT_DOUBLE_EQ(m.bw_eff, 1000.0 / 273.0);
    EXPECT_DOUBLE_EQ(m.energy_eff, 1000.0 / 48.0);
}

TEST(Metrics, MatchesPaperTable4RowG4)
{
    // G4: 16.2M edges in 0.730 ms -> 22,191 MTEPS (paper rounds to 22,144
    // from the exact edge count), 44.4 GFLOP/s, 81.3 MTEPS/(GB/s).
    const Metrics m = Metrics::from_run(16'200'000, 0.730, 273.0, 48.0);
    EXPECT_NEAR(m.mteps, 22'191.0, 10.0);
    EXPECT_NEAR(m.gflops, 44.4, 0.1);
    EXPECT_NEAR(m.bw_eff, 81.3, 0.2);
    EXPECT_NEAR(m.energy_eff, 462.0, 1.0);
}

TEST(Metrics, RejectsNonPositiveInputs)
{
    EXPECT_THROW(Metrics::from_run(1, 0.0, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(Metrics::from_run(1, 1.0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(Metrics::from_run(1, 1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Stats, GeomeanBasics)
{
    const std::vector<double> v = {1.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(v), 2.0);
    const std::vector<double> single = {7.5};
    EXPECT_DOUBLE_EQ(geomean(single), 7.5);
}

TEST(Stats, GeomeanMatchesPaperImprovement)
{
    // The paper's headline 1.91x is the geomean of the per-matrix MTEPS
    // ratios in Table 4. Feed those ratios; expect 1.91 (±0.01 rounding).
    const std::vector<double> improvements = {0.922, 1.58, 2.17, 2.15, 2.16,
                                              2.04, 1.56, 1.74, 2.21, 2.26,
                                              2.00, 2.93};
    EXPECT_NEAR(geomean(improvements), 1.91, 0.015);
}

TEST(Stats, GeomeanRejectsBadInput)
{
    EXPECT_THROW(geomean({}), std::invalid_argument);
    const std::vector<double> with_zero = {1.0, 0.0};
    EXPECT_THROW(geomean(with_zero), std::invalid_argument);
}

TEST(Stats, Ratios)
{
    const std::vector<double> a = {4.0, 9.0};
    const std::vector<double> b = {2.0, 3.0};
    EXPECT_EQ(ratios(a, b), (std::vector<double>{2.0, 3.0}));
    const std::vector<double> misaligned = {1.0};
    EXPECT_THROW(ratios(a, misaligned), std::invalid_argument);
}

TEST(Stats, MeanMinMax)
{
    const std::vector<double> v = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.0);
    EXPECT_DOUBLE_EQ(min_of(v), 1.0);
    EXPECT_DOUBLE_EQ(max_of(v), 3.0);
}

TEST(Table, AlignedOutput)
{
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"beta-longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| beta-longer |"), std::string::npos);
    EXPECT_NE(out.find("|------"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, CsvOutput)
{
    TextTable t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRow)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FmtFormatsNumbers)
{
    EXPECT_EQ(fmt(1.2345, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 0), "1");
    EXPECT_EQ(fmt(std::numeric_limits<double>::quiet_NaN()), "-");
    EXPECT_EQ(fmt_ratio(1.909, 2), "1.91x");
    EXPECT_EQ(fmt_ratio(std::numeric_limits<double>::quiet_NaN()), "-");
}

} // namespace
} // namespace serpens::analysis
