// Determinism and correctness of the parallel per-channel simulator loop.
//
// simulate_spmv parallelizes the lane-decode loop across HBM channels;
// channels write disjoint PE accumulator slices (paper §3.3 address
// disjointness), so the contract is that y and CycleStats are *bit-identical*
// for every thread count — the parallel simulator is the same machine, just
// walked by more host threads.
#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "encode/image.h"
#include "sim/simulator.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens {
namespace {

void expect_bit_identical(const sim::SimResult& a, const sim::SimResult& b,
                          const std::string& label)
{
    ASSERT_EQ(a.y.size(), b.y.size()) << label;
    for (std::size_t i = 0; i < a.y.size(); ++i)
        ASSERT_EQ(float_bits(a.y[i]), float_bits(b.y[i]))
            << label << " row " << i;
    EXPECT_EQ(a.cycles.compute_cycles, b.cycles.compute_cycles) << label;
    EXPECT_EQ(a.cycles.x_load_cycles, b.cycles.x_load_cycles) << label;
    EXPECT_EQ(a.cycles.y_phase_cycles, b.cycles.y_phase_cycles) << label;
    EXPECT_EQ(a.cycles.fill_cycles, b.cycles.fill_cycles) << label;
    EXPECT_EQ(a.cycles.total_slots, b.cycles.total_slots) << label;
    EXPECT_EQ(a.cycles.padding_slots, b.cycles.padding_slots) << label;
    EXPECT_EQ(a.cycles.traffic.bytes_read, b.cycles.traffic.bytes_read)
        << label;
    EXPECT_EQ(a.cycles.traffic.bytes_written, b.cycles.traffic.bytes_written)
        << label;
}

sim::SimResult run_with_threads(const encode::SerpensImage& img,
                                std::span<const float> x,
                                std::span<const float> y, float alpha,
                                float beta, unsigned threads)
{
    sim::SimOptions options;
    options.threads = threads;
    return sim::simulate_spmv(img, x, y, alpha, beta, options);
}

TEST(ParallelSim, BitIdenticalAcrossThreadCounts)
{
    // Multiple segments (window 1024 on 8192 cols) so every channel does
    // real per-segment work, plus alpha/beta in play.
    const auto m = sparse::make_uniform_random(4096, 8192, 150'000, 41);
    encode::EncodeParams params;
    params.window = 1024;
    const auto img = encode::encode_matrix(m, params);

    Rng rng(3);
    std::vector<float> x(m.cols()), y(m.rows());
    for (float& v : x)
        v = rng.next_float(-1.0f, 1.0f);
    for (float& v : y)
        v = rng.next_float(-1.0f, 1.0f);

    const auto serial = run_with_threads(img, x, y, 1.25f, -0.75f, 1);
    for (const unsigned threads : {2u, 8u, 0u}) {
        const auto parallel = run_with_threads(img, x, y, 1.25f, -0.75f, threads);
        expect_bit_identical(parallel, serial,
                             "threads=" + std::to_string(threads));
    }
}

TEST(ParallelSim, BitIdenticalAcrossStructures)
{
    // Structure classes stress different channel-depth skews: banded keeps
    // channels even, clustered and dense_rows skew a few channels deep.
    std::vector<sparse::CooMatrix> matrices;
    matrices.push_back(sparse::make_banded(2048, 9, 51));
    matrices.push_back(sparse::make_clustered(2048, 50'000, 8, 64, 0.3, 53));
    matrices.push_back(sparse::make_dense_rows(1024, 4096, 6, 512, 57));
    for (const auto& m : matrices) {
        encode::EncodeParams params;
        params.window = 512;
        const auto img = encode::encode_matrix(m, params);
        std::vector<float> x(m.cols(), 0.5f), y(m.rows(), 1.0f);
        const auto serial = run_with_threads(img, x, y, 2.0f, 0.5f, 1);
        const auto parallel = run_with_threads(img, x, y, 2.0f, 0.5f, 8);
        expect_bit_identical(parallel, serial, "structure case");
    }
}

TEST(ParallelSim, AcceleratorSimThreadsKnob)
{
    // Through the facade: SerpensConfig::sim_threads must not change the
    // result, the cycle model, or the derived metrics.
    const auto m = sparse::make_uniform_random(3000, 3000, 90'000, 61);
    Rng rng(8);
    std::vector<float> x(3000), y(3000);
    for (float& v : x)
        v = rng.next_float(-1.0f, 1.0f);
    for (float& v : y)
        v = rng.next_float(-1.0f, 1.0f);

    core::SerpensConfig serial_cfg = core::SerpensConfig::a16();
    serial_cfg.sim_threads = 1;
    core::SerpensConfig parallel_cfg = core::SerpensConfig::a16();
    parallel_cfg.sim_threads = 8;

    const core::Accelerator serial_acc(serial_cfg);
    const core::Accelerator parallel_acc(parallel_cfg);
    const auto ra = serial_acc.run(serial_acc.prepare(m), x, y, 0.5f, 2.0f);
    const auto rb = parallel_acc.run(parallel_acc.prepare(m), x, y, 0.5f, 2.0f);
    ASSERT_EQ(ra.y.size(), rb.y.size());
    for (std::size_t i = 0; i < ra.y.size(); ++i)
        EXPECT_EQ(float_bits(ra.y[i]), float_bits(rb.y[i])) << "row " << i;
    EXPECT_EQ(ra.cycles.total_cycles(), rb.cycles.total_cycles());
    EXPECT_DOUBLE_EQ(ra.time_ms, rb.time_ms);
    EXPECT_DOUBLE_EQ(ra.metrics.gflops, rb.metrics.gflops);
}

TEST(ParallelSim, SingleChannelConfigStillCorrect)
{
    // ha_channels == 1: the pool degenerates to one worker; results must
    // still match the CPU reference path exercised elsewhere and the serial
    // simulator here.
    const auto m = sparse::make_banded(512, 5, 71);
    encode::EncodeParams params;
    params.ha_channels = 1;
    params.window = 256;
    const auto img = encode::encode_matrix(m, params);
    std::vector<float> x(m.cols(), 1.0f), y(m.rows(), 0.0f);
    const auto serial = run_with_threads(img, x, y, 1.0f, 0.0f, 1);
    const auto parallel = run_with_threads(img, x, y, 1.0f, 0.0f, 8);
    expect_bit_identical(parallel, serial, "single channel");
}

} // namespace
} // namespace serpens
