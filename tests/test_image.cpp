// Tests for the encoded stream image: structure, round-trip, invariants.
#include <gtest/gtest.h>

#include <map>

#include "encode/decode.h"
#include "encode/image.h"
#include "sparse/generators.h"

namespace serpens::encode {
namespace {

using sparse::CooMatrix;
using sparse::index_t;
using sparse::Triplet;

EncodeParams small_params()
{
    EncodeParams p;
    p.ha_channels = 2;   // 16 PEs, keeps tests fast
    p.window = 64;
    p.dsp_latency = 4;
    return p;
}

void expect_same_matrix(const CooMatrix& original,
                        const std::vector<Triplet>& decoded)
{
    CooMatrix norm = original;
    norm.sort_row_major();
    ASSERT_EQ(decoded.size(), norm.nnz());
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        EXPECT_EQ(decoded[i].row, norm.elements()[i].row);
        EXPECT_EQ(decoded[i].col, norm.elements()[i].col);
        EXPECT_EQ(decoded[i].val, norm.elements()[i].val) << "value bits differ";
    }
}

TEST(Image, SegmentCountCeilOfColsOverWindow)
{
    const CooMatrix m = sparse::make_diagonal(100);
    const SerpensImage img = encode_matrix(m, small_params());
    EXPECT_EQ(img.num_segments(), 2u);  // ceil(100 / 64)
    EXPECT_EQ(img.channels(), 2u);
    EXPECT_EQ(img.rows(), 100u);
    EXPECT_EQ(img.cols(), 100u);
}

TEST(Image, RoundTripDiagonal)
{
    const CooMatrix m = sparse::make_diagonal(200, 3.0f);
    const SerpensImage img = encode_matrix(m, small_params());
    expect_same_matrix(m, decode_image(img));
}

TEST(Image, RoundTripRandom)
{
    const CooMatrix m = sparse::make_uniform_random(300, 500, 4000, 77);
    const SerpensImage img = encode_matrix(m, small_params());
    expect_same_matrix(m, decode_image(img));
}

TEST(Image, RoundTripBanded)
{
    const CooMatrix m = sparse::make_banded(256, 12, 5);
    const SerpensImage img = encode_matrix(m, small_params());
    expect_same_matrix(m, decode_image(img));
}

TEST(Image, RoundTripWithoutCoalescing)
{
    EncodeParams p = small_params();
    p.coalescing = false;
    const CooMatrix m = sparse::make_uniform_random(200, 200, 2000, 8);
    const SerpensImage img = encode_matrix(m, p);
    expect_same_matrix(m, decode_image(img));
}

TEST(Image, HazardInvariantHolds)
{
    const CooMatrix m = sparse::make_uniform_random(64, 256, 3000, 9);
    const SerpensImage img = encode_matrix(m, small_params());
    EXPECT_NO_THROW(verify_image(img));
}

TEST(Image, HazardInvariantHoldsUnderHeavyConflicts)
{
    // Few rows + many elements = maximal URAM-address contention.
    const CooMatrix m = sparse::make_dense_rows(4, 512, 4, 256, 10);
    EncodeParams p = small_params();
    p.dsp_latency = 8;
    const SerpensImage img = encode_matrix(m, p);
    EXPECT_NO_THROW(verify_image(img));
    expect_same_matrix(m, decode_image(img));
}

TEST(Image, StatsAccountForEverySlot)
{
    const CooMatrix m = sparse::make_uniform_random(128, 300, 2500, 11);
    const SerpensImage img = encode_matrix(m, small_params());
    const EncodeStats& s = img.stats();
    EXPECT_EQ(s.nnz, m.nnz());
    EXPECT_EQ(s.total_slots, s.nnz + s.padding_slots);
    EXPECT_EQ(s.total_slots % 8, 0u);  // whole 8-lane lines
    EXPECT_EQ(s.total_lines * 8, s.total_slots);
    std::uint64_t lines = 0;
    for (unsigned c = 0; c < img.channels(); ++c)
        lines += img.channel(c).size();
    EXPECT_EQ(lines, s.total_lines);
}

TEST(Image, SegmentLinesSumToStreamLength)
{
    const CooMatrix m = sparse::make_uniform_random(96, 400, 3000, 13);
    const SerpensImage img = encode_matrix(m, small_params());
    for (unsigned c = 0; c < img.channels(); ++c) {
        std::uint64_t total = 0;
        for (unsigned s = 0; s < img.num_segments(); ++s)
            total += img.segment_lines(c, s);
        EXPECT_EQ(total, img.channel(c).size());
    }
}

TEST(Image, SegmentDepthIsMaxOverChannels)
{
    const CooMatrix m = sparse::make_uniform_random(96, 400, 3000, 14);
    const SerpensImage img = encode_matrix(m, small_params());
    for (unsigned s = 0; s < img.num_segments(); ++s) {
        std::uint32_t expect = 0;
        for (unsigned c = 0; c < img.channels(); ++c)
            expect = std::max(expect, img.segment_lines(c, s));
        EXPECT_EQ(img.segment_depth(s), expect);
    }
}

TEST(Image, ColumnSegmentationRespectsWindow)
{
    // All decoded column offsets must reconstruct the original columns —
    // checked implicitly by round-trip — and segment s must only contain
    // columns in [s*W, (s+1)*W).
    EncodeParams p = small_params();
    const CooMatrix m = sparse::make_uniform_random(64, 10 * p.window, 5000, 15);
    const SerpensImage img = encode_matrix(m, p);
    const RowMapping mapping(p);
    for (unsigned ch = 0; ch < img.channels(); ++ch) {
        std::size_t at = 0;
        for (unsigned seg = 0; seg < img.num_segments(); ++seg) {
            for (std::uint32_t i = 0; i < img.segment_lines(ch, seg); ++i) {
                const hbm::Line512& line = img.channel(ch).line(at + i);
                for (unsigned lane = 0; lane < 8; ++lane) {
                    const auto e = EncodedElement::from_bits(line.lane64(lane));
                    if (e.valid()) {
                        ASSERT_LT(e.col_off(), p.window);
                    }
                }
            }
            at += img.segment_lines(ch, seg);
        }
    }
}

TEST(Image, EmptyMatrixProducesEmptyStreams)
{
    const CooMatrix m(64, 64);  // zero non-zeros
    const SerpensImage img = encode_matrix(m, small_params());
    EXPECT_EQ(img.stats().nnz, 0u);
    EXPECT_EQ(img.stats().total_slots, 0u);
    for (unsigned c = 0; c < img.channels(); ++c)
        EXPECT_TRUE(img.channel(c).empty());
}

TEST(Image, CapacityEnforced)
{
    EncodeParams p = small_params();
    p.urams_per_pe = 1;
    p.uram_depth = 4;
    // capacity = 2 * 16 * 4 = 128 rows
    EXPECT_EQ(p.row_capacity(), 128u);
    const CooMatrix ok = sparse::make_diagonal(128);
    EXPECT_NO_THROW(encode_matrix(ok, p));
    const CooMatrix too_big = sparse::make_diagonal(129);
    EXPECT_THROW(encode_matrix(too_big, p), serpens::CapacityError);
}

TEST(Image, PaddingFreeWithoutCoalescingOnDiagonal)
{
    // Without coalescing a diagonal matrix gives every PE strictly distinct
    // addresses and perfectly balanced lanes: exactly zero padding.
    EncodeParams p = small_params();
    p.coalescing = false;
    const CooMatrix m = sparse::make_diagonal(4096);
    const SerpensImage img = encode_matrix(m, p);
    EXPECT_EQ(img.stats().padding_slots, 0u);
}

TEST(Image, CoalescingNeedsWideWindowToInterleaveDiagonal)
{
    // With coalescing, consecutive rows share a URAM address, so a diagonal
    // matrix in a *narrow* segment window leaves the scheduler with 2-element
    // buckets it cannot fully interleave (padding appears); a *wide* window
    // gives it enough distinct pairs to hide every hazard.
    const CooMatrix m = sparse::make_diagonal(4096);

    EncodeParams narrow = small_params();  // window 64: 2 pairs per PE/segment
    const SerpensImage img_narrow = encode_matrix(m, narrow);
    EXPECT_GT(img_narrow.stats().padding_ratio(), 0.2);

    EncodeParams wide = small_params();
    wide.window = 4096;  // 128 pairs per PE/segment
    const SerpensImage img_wide = encode_matrix(m, wide);
    EXPECT_LT(img_wide.stats().padding_ratio(), 0.01);
}

TEST(Image, DeterministicEncoding)
{
    const CooMatrix m = sparse::make_uniform_random(128, 256, 2000, 99);
    const SerpensImage a = encode_matrix(m, small_params());
    const SerpensImage b = encode_matrix(m, small_params());
    ASSERT_EQ(a.channels(), b.channels());
    for (unsigned c = 0; c < a.channels(); ++c) {
        ASSERT_EQ(a.channel(c).size(), b.channel(c).size());
        for (std::size_t i = 0; i < a.channel(c).size(); ++i)
            ASSERT_EQ(a.channel(c).line(i), b.channel(c).line(i));
    }
}

// Round-trip property across parameter sweep.
struct ImageCase {
    unsigned ha;
    unsigned window;
    unsigned latency;
    bool coalescing;
};

class ImageRoundTrip : public ::testing::TestWithParam<ImageCase> {};

TEST_P(ImageRoundTrip, DecodeRecoversMatrix)
{
    const ImageCase c = GetParam();
    EncodeParams p;
    p.ha_channels = c.ha;
    p.window = c.window;
    p.dsp_latency = c.latency;
    p.coalescing = c.coalescing;
    const CooMatrix m = sparse::make_uniform_random(
        500, 700, 6000, 1000 + c.ha * 7 + c.window + c.latency);
    const SerpensImage img = encode_matrix(m, p);
    expect_same_matrix(m, decode_image(img));
    EXPECT_NO_THROW(verify_image(img));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImageRoundTrip,
    ::testing::Values(ImageCase{1, 64, 1, true}, ImageCase{1, 64, 8, false},
                      ImageCase{2, 128, 4, true}, ImageCase{4, 256, 2, true},
                      ImageCase{8, 1024, 8, true}, ImageCase{16, 8192, 8, true},
                      ImageCase{16, 8192, 8, false},
                      ImageCase{3, 112, 5, true}));

} // namespace
} // namespace serpens::encode
