// Tests for the HBM line/channel/spec substrate.
#include <gtest/gtest.h>

#include "hbm/channel.h"
#include "hbm/line.h"
#include "hbm/spec.h"

namespace serpens::hbm {
namespace {

TEST(Line, Constants)
{
    EXPECT_EQ(kLineBytes, 64u);
    EXPECT_EQ(kWordsPerLine, 16u);
    EXPECT_EQ(kElemsPerLine, 8u);
}

TEST(Line, DefaultZeroed)
{
    const Line512 line;
    for (unsigned lane = 0; lane < kElemsPerLine; ++lane)
        EXPECT_EQ(line.lane64(lane), 0u);
}

TEST(Line, Lane64RoundTrip)
{
    Line512 line;
    for (unsigned lane = 0; lane < kElemsPerLine; ++lane)
        line.set_lane64(lane, 0x0123456789ABCDEFull + lane);
    for (unsigned lane = 0; lane < kElemsPerLine; ++lane)
        EXPECT_EQ(line.lane64(lane), 0x0123456789ABCDEFull + lane);
}

TEST(Line, LanesMapToWordPairs)
{
    Line512 line;
    line.set_lane64(2, 0xAAAAAAAA'BBBBBBBBull);
    EXPECT_EQ(line.words[4], 0xBBBBBBBBu);  // low word
    EXPECT_EQ(line.words[5], 0xAAAAAAAAu);  // high word
    EXPECT_EQ(line.words[3], 0u);           // neighbours untouched
    EXPECT_EQ(line.words[6], 0u);
}

TEST(Channel, PushAndAccounting)
{
    ChannelStream s("A0");
    EXPECT_TRUE(s.empty());
    s.push(Line512{});
    s.push(Line512{});
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s.bytes(), 128u);
    EXPECT_EQ(s.name(), "A0");
}

TEST(Traffic, Accumulates)
{
    TrafficCounter t;
    t.add_read(100);
    t.add_read(28);
    t.add_write(64);
    EXPECT_EQ(t.bytes_read, 128u);
    EXPECT_EQ(t.bytes_written, 64u);
    EXPECT_EQ(t.total(), 192u);
}

TEST(Traffic, FormatsHumanReadable)
{
    TrafficCounter t;
    t.add_read(3ull << 30);
    t.add_write(5ull << 20);
    const std::string s = format_traffic(t);
    EXPECT_NE(s.find("3.00 GiB read"), std::string::npos);
    EXPECT_NE(s.find("5.00 MiB written"), std::string::npos);
}

TEST(Spec, PaperBandwidthNumbers)
{
    const HbmSpec spec;
    // Table 2 / §4.4: 19 channels = 273 GB/s, 27 = 388 GB/s, 32 = 460 GB/s.
    EXPECT_NEAR(spec.utilized_gbps(19), 273.0, 0.5);
    EXPECT_NEAR(spec.utilized_gbps(27), 388.0, 0.5);
    EXPECT_NEAR(spec.peak_gbps(), 460.0, 0.5);
}

} // namespace
} // namespace serpens::hbm
