// Unit and property tests for the hazard-aware non-zero reordering.
// The validity invariant itself lives in schedule_checker.h, shared with
// the differential and end-to-end suites.
#include <gtest/gtest.h>

#include <numeric>

#include "encode/schedule.h"
#include "schedule_checker.h"
#include "util/rng.h"

namespace serpens::encode {
namespace {

TEST(Scheduler, EmptyInput)
{
    const ScheduleResult r = schedule_hazard_aware({}, 4,
                                                   SchedulePolicy::fifo);
    EXPECT_TRUE(r.slots.empty());
    EXPECT_EQ(r.real_count, 0u);
    EXPECT_EQ(r.padding_count, 0u);
}

TEST(Scheduler, SingleElement)
{
    const std::vector<std::uint32_t> addrs = {7};
    const ScheduleResult r =
        schedule_hazard_aware(addrs, 8, SchedulePolicy::largest_bucket_first);
    EXPECT_EQ(r.slots.size(), 1u);
    EXPECT_EQ(r.slots[0], 0);
}

TEST(Scheduler, DistinctAddressesNeedNoPadding)
{
    std::vector<std::uint32_t> addrs(100);
    std::iota(addrs.begin(), addrs.end(), 0);
    const ScheduleResult r =
        schedule_hazard_aware(addrs, 8, SchedulePolicy::largest_bucket_first);
    EXPECT_EQ(r.slots.size(), 100u);
    EXPECT_EQ(r.padding_count, 0u);
    expect_valid_schedule(r, addrs, 8);
}

TEST(Scheduler, SingleAddressWorstCase)
{
    // n copies of one address: schedule must be (n-1)*T + 1 slots.
    const std::vector<std::uint32_t> addrs(10, 3);
    const unsigned window = 4;
    const ScheduleResult r =
        schedule_hazard_aware(addrs, window, SchedulePolicy::largest_bucket_first);
    EXPECT_EQ(r.slots.size(), 9u * window + 1);
    expect_valid_schedule(r, addrs, window);
}

TEST(Scheduler, WindowOneMeansNoConstraint)
{
    const std::vector<std::uint32_t> addrs(50, 1);
    const ScheduleResult r =
        schedule_hazard_aware(addrs, 1, SchedulePolicy::largest_bucket_first);
    EXPECT_EQ(r.slots.size(), 50u);
    EXPECT_EQ(r.padding_count, 0u);
}

TEST(Scheduler, TwoInterleavableGroups)
{
    // Two addresses, window 2: perfect interleave, zero padding.
    std::vector<std::uint32_t> addrs;
    for (int i = 0; i < 20; ++i)
        addrs.push_back(i % 2 == 0 ? 10 : 20);
    const ScheduleResult r =
        schedule_hazard_aware(addrs, 2, SchedulePolicy::largest_bucket_first);
    EXPECT_EQ(r.padding_count, 0u);
    expect_valid_schedule(r, addrs, 2);
}

TEST(Scheduler, PaperFigure2Example)
{
    // The paper's 4x4 example with T = 2 and Serpens pair-coloring:
    // rows {0,1} -> pair 0, rows {2,3} -> pair 1. The nine non-zeros
    // (Figure 2b) have pair addresses:
    //   (0,0) (0,2) (0,3) (1,0) (1,2) -> pair 0
    //   (2,1) (2,3) (3,0) (3,2)       -> pair 1
    const std::vector<std::uint32_t> addrs = {0, 0, 0, 0, 0, 1, 1, 1, 1};
    const ScheduleResult r =
        schedule_hazard_aware(addrs, 2, SchedulePolicy::largest_bucket_first);
    // 5 elements of pair 0 under T=2 need 4*2+1 = 9 slots; pair 1 fills the
    // gaps: total 9 slots, zero padding — matching Figure 2(d).
    EXPECT_EQ(r.slots.size(), 9u);
    EXPECT_EQ(r.padding_count, 0u);
    expect_valid_schedule(r, addrs, 2);
}

TEST(Scheduler, LowerBoundMatchesSpacingCase)
{
    const std::vector<std::uint32_t> addrs = {5, 5, 5, 9};
    EXPECT_EQ(schedule_lower_bound(addrs, 8), 2u * 8 + 1);
    EXPECT_EQ(schedule_lower_bound(addrs, 1), 4u);
    EXPECT_EQ(schedule_lower_bound({}, 4), 0u);
}

TEST(Scheduler, LargestBucketFirstIsOptimalOnTwoGroups)
{
    // 8 of address A, 2 of address B, window 3. LBF achieves the lower
    // bound (7*3+1 = 22).
    std::vector<std::uint32_t> addrs(8, 1);
    addrs.push_back(2);
    addrs.push_back(2);
    const ScheduleResult r =
        schedule_hazard_aware(addrs, 3, SchedulePolicy::largest_bucket_first);
    EXPECT_EQ(r.slots.size(), schedule_lower_bound(addrs, 3));
    expect_valid_schedule(r, addrs, 3);
}

TEST(Scheduler, FifoIsValidButCanBeLonger)
{
    std::vector<std::uint32_t> addrs(8, 1);
    addrs.push_back(2);
    addrs.push_back(2);
    const ScheduleResult fifo =
        schedule_hazard_aware(addrs, 3, SchedulePolicy::fifo);
    expect_valid_schedule(fifo, addrs, 3);
    EXPECT_GE(fifo.slots.size(), schedule_lower_bound(addrs, 3));
}

TEST(Scheduler, Deterministic)
{
    Rng rng(4242);
    std::vector<std::uint32_t> addrs;
    for (int i = 0; i < 500; ++i)
        addrs.push_back(static_cast<std::uint32_t>(rng.next_below(40)));
    const ScheduleResult a =
        schedule_hazard_aware(addrs, 6, SchedulePolicy::largest_bucket_first);
    const ScheduleResult b =
        schedule_hazard_aware(addrs, 6, SchedulePolicy::largest_bucket_first);
    EXPECT_EQ(a.slots, b.slots);
}

TEST(Scheduler, RejectsZeroWindow)
{
    EXPECT_THROW(schedule_hazard_aware({}, 0, SchedulePolicy::fifo),
                 std::invalid_argument);
}

// Property sweep: random workloads, all policies, several windows.
struct SchedulerCase {
    unsigned window;
    unsigned distinct_addrs;
    unsigned count;
    SchedulePolicy policy;
    std::uint64_t seed;
};

class SchedulerProperty : public ::testing::TestWithParam<SchedulerCase> {};

TEST_P(SchedulerProperty, ScheduleIsAlwaysValid)
{
    const SchedulerCase c = GetParam();
    Rng rng(c.seed);
    std::vector<std::uint32_t> addrs;
    addrs.reserve(c.count);
    for (unsigned i = 0; i < c.count; ++i)
        addrs.push_back(static_cast<std::uint32_t>(rng.next_below(c.distinct_addrs)));
    const ScheduleResult r = schedule_hazard_aware(addrs, c.window, c.policy);
    expect_valid_schedule(r, addrs, c.window);
    EXPECT_GE(r.slots.size(), schedule_lower_bound(addrs, c.window));
}

std::vector<SchedulerCase> scheduler_cases()
{
    std::vector<SchedulerCase> cases;
    std::uint64_t seed = 1;
    for (unsigned window : {1u, 2u, 4u, 8u, 16u}) {
        for (unsigned distinct : {1u, 2u, 7u, 64u, 1024u}) {
            for (SchedulePolicy policy :
                 {SchedulePolicy::fifo, SchedulePolicy::largest_bucket_first}) {
                cases.push_back({window, distinct, 400, policy, seed++});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulerProperty,
                         ::testing::ValuesIn(scheduler_cases()));

// LBF should never be *worse* than the lower bound by more than the window
// on these workloads — a regression guard on scheduler quality.
class SchedulerQuality : public ::testing::TestWithParam<unsigned> {};

TEST_P(SchedulerQuality, LbfNearLowerBoundOnBalancedLoads)
{
    const unsigned window = GetParam();
    Rng rng(window * 31 + 7);
    std::vector<std::uint32_t> addrs;
    for (int i = 0; i < 2000; ++i)
        addrs.push_back(static_cast<std::uint32_t>(rng.next_below(256)));
    const ScheduleResult r =
        schedule_hazard_aware(addrs, window, SchedulePolicy::largest_bucket_first);
    const std::size_t bound = schedule_lower_bound(addrs, window);
    EXPECT_LE(r.slots.size(), bound + window)
        << "LBF schedule drifted from the lower bound";
}

INSTANTIATE_TEST_SUITE_P(Windows, SchedulerQuality,
                         ::testing::Values(1, 2, 4, 8, 12));

} // namespace
} // namespace serpens::encode
