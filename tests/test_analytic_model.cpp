// Tests for the paper's closed-form models (Eq. 1-4) and the resource model
// (Table 6).
#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/resource_model.h"

namespace serpens::core {
namespace {

TEST(Analytic, Equation1Brams)
{
    encode::EncodeParams p;
    p.ha_channels = 16;
    EXPECT_EQ(brams_required(p), 512u);
    p.ha_channels = 24;
    EXPECT_EQ(brams_required(p), 768u);
    p.ha_channels = 1;
    EXPECT_EQ(brams_required(p), 32u);
}

TEST(Analytic, Equation2Urams)
{
    encode::EncodeParams p;
    p.ha_channels = 16;
    p.urams_per_pe = 3;
    EXPECT_EQ(urams_required(p), 384u);  // paper Table 6
    p.ha_channels = 24;
    EXPECT_EQ(urams_required(p), 576u);
    p.urams_per_pe = 1;
    EXPECT_EQ(urams_required(p), 192u);
}

TEST(Analytic, Equation3RowCapacity)
{
    encode::EncodeParams p;  // HA=16, U=3, D=4096
    EXPECT_EQ(row_capacity(p), 16ull * 16 * 3 * 4096);  // 3,145,728
    // The biggest Table 3 matrix (ogbn_products, 2.45M rows) must fit.
    EXPECT_GE(row_capacity(p), 2'450'000u);
}

TEST(Analytic, Equation4IdealCycles)
{
    encode::EncodeParams p;  // HA = 16 -> 128 elements/cycle
    // (M + K)/16 + NNZ/128 with exact ceils.
    EXPECT_EQ(ideal_cycles(p, 1600, 1600, 128'000), 100u + 100u + 1000u);
    EXPECT_EQ(ideal_cycles(p, 17, 17, 129), 2u + 2u + 2u);  // all ceils round up
    p.ha_channels = 24;
    EXPECT_EQ(ideal_cycles(p, 1600, 1600, 192'000), 200u + 1000u);
}

TEST(Analytic, IdealTimeUsesFrequency)
{
    SerpensConfig c = SerpensConfig::a16();
    // 223 MHz: 223,000 cycles per ms.
    const double ms = ideal_time_ms(c, 0, 0, 128 * 223'000);
    EXPECT_NEAR(ms, 1.0, 1e-9);
}

TEST(Analytic, PaperScaleSanityG12)
{
    // G12 ogbn_products: M = K = 2.45M, NNZ = 124M. Eq. 4 at 223 MHz gives
    // ~5.7 ms; the paper measures 6.32 ms. The ideal model must come out
    // below the measurement but within 2x.
    SerpensConfig c = SerpensConfig::a16();
    const double ms = ideal_time_ms(c, 2'450'000, 2'450'000, 124'000'000);
    EXPECT_GT(ms, 3.0);
    EXPECT_LT(ms, 6.32);
}

TEST(Analytic, EstimateAddsOverheads)
{
    SerpensConfig c = SerpensConfig::a16();
    const double ideal = ideal_time_ms(c, 100'000, 100'000, 10'000'000);
    const double modeled = estimate_time_ms(c, 100'000, 100'000, 10'000'000);
    EXPECT_GT(modeled, ideal);
}

TEST(Analytic, EstimateMonotoneInPadding)
{
    SerpensConfig c = SerpensConfig::a16();
    const double p0 = estimate_time_ms(c, 1000, 1000, 100'000, 0.0);
    const double p1 = estimate_time_ms(c, 1000, 1000, 100'000, 0.2);
    EXPECT_GT(p1, p0);
    EXPECT_THROW(estimate_time_ms(c, 1000, 1000, 100'000, 1.0),
                 std::invalid_argument);
}

TEST(Analytic, MoreChannelsNeverSlower)
{
    SerpensConfig a16 = SerpensConfig::a16();
    SerpensConfig a24 = SerpensConfig::a24();
    const double t16 = estimate_time_ms(a16, 100'000, 100'000, 50'000'000);
    const double t24 = estimate_time_ms(a24, 100'000, 100'000, 50'000'000);
    EXPECT_LT(t24, t16);
}

// --- Config presets ---

TEST(Config, A16MatchesPaperTable2)
{
    const SerpensConfig c = SerpensConfig::a16();
    EXPECT_EQ(c.arch.ha_channels, 16u);
    EXPECT_DOUBLE_EQ(c.frequency_mhz, 223.0);
    EXPECT_DOUBLE_EQ(c.power_w, 48.0);
    EXPECT_EQ(c.total_hbm_channels(), 19u);
    EXPECT_NEAR(c.utilized_bandwidth_gbps(), 273.0, 0.5);  // paper: 273 GB/s
}

TEST(Config, A24MatchesPaperSection44)
{
    const SerpensConfig c = SerpensConfig::a24();
    EXPECT_EQ(c.arch.ha_channels, 24u);
    EXPECT_DOUBLE_EQ(c.frequency_mhz, 270.0);
    EXPECT_EQ(c.total_hbm_channels(), 27u);
    EXPECT_NEAR(c.utilized_bandwidth_gbps(), 388.0, 0.5);  // paper: 388 GB/s
}

// --- Resource model ---

TEST(Resources, A16MatchesPaperTable6)
{
    const ResourceEstimate r = estimate_resources(SerpensConfig::a16());
    EXPECT_EQ(r.luts, 173'000u);
    EXPECT_EQ(r.ffs, 327'000u);
    EXPECT_EQ(r.dsps, 720u);
    EXPECT_EQ(r.brams, 655u);
    EXPECT_EQ(r.urams, 384u);
    EXPECT_NEAR(r.lut_pct, 15.0, 0.5);
    EXPECT_NEAR(r.ff_pct, 14.0, 0.5);
    EXPECT_NEAR(r.dsp_pct, 8.0, 0.5);
    EXPECT_NEAR(r.bram_pct, 36.0, 0.5);
    EXPECT_NEAR(r.uram_pct, 40.0, 0.5);
}

TEST(Resources, ScalesWithChannels)
{
    const ResourceEstimate a16 = estimate_resources(SerpensConfig::a16());
    const ResourceEstimate a24 = estimate_resources(SerpensConfig::a24());
    EXPECT_GT(a24.luts, a16.luts);
    EXPECT_GT(a24.dsps, a16.dsps);
    EXPECT_EQ(a24.urams, 576u);   // 8 * 24 * 3
    EXPECT_EQ(a24.brams, 768u + (a16.brams - 512u));  // Eq.1 + same base
}

TEST(Resources, A24FitsTheDevice)
{
    const ResourceEstimate r = estimate_resources(SerpensConfig::a24());
    EXPECT_LT(r.lut_pct, 100.0);
    EXPECT_LT(r.uram_pct, 100.0);
    EXPECT_LT(r.bram_pct, 100.0);
    EXPECT_LT(r.dsp_pct, 100.0);
}

} // namespace
} // namespace serpens::core
