// Randomized end-to-end property tests: generate -> encode -> simulate ->
// compare, across random shapes, densities, and accelerator geometries.
#include <gtest/gtest.h>

#include "baselines/cpu_spmv.h"
#include "core/accelerator.h"
#include "core/analytic.h"
#include "encode/decode.h"
#include "encode/schedule_reference.h"
#include "schedule_checker.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens {
namespace {

using core::Accelerator;
using core::SerpensConfig;
using sparse::CooMatrix;

// Re-derive the per-(segment, channel, lane) conflict-address streams the
// encoder feeds the scheduler for this matrix/geometry, through the same
// encode::place_element mapping encode_matrix buckets with (same arrival
// order too).
std::vector<std::vector<std::uint32_t>> lane_addr_streams(
    const CooMatrix& m, const encode::EncodeParams& params)
{
    const encode::RowMapping mapping(params);
    const unsigned lanes = params.pes_per_channel;
    const unsigned channels = params.ha_channels;
    const auto segments = static_cast<unsigned>(
        (m.cols() + params.window - 1) / params.window);
    std::vector<std::vector<std::uint32_t>> streams(
        static_cast<std::size_t>(segments) * channels * lanes);
    for (const sparse::Triplet& t : m.elements()) {
        const encode::ElementPlacement p =
            encode::place_element(mapping, params, t.row, t.col);
        streams[(static_cast<std::size_t>(p.segment) * channels + p.channel) *
                    lanes +
                p.lane]
            .push_back(p.addr);
    }
    return streams;
}

struct E2ECase {
    std::uint64_t seed;
};

class EndToEndProperty : public ::testing::TestWithParam<E2ECase> {};

TEST_P(EndToEndProperty, PipelineMatchesReferenceOnRandomShape)
{
    Rng rng(GetParam().seed);

    // Random shape / density / geometry.
    const auto rows = static_cast<sparse::index_t>(64 + rng.next_below(2000));
    const auto cols = static_cast<sparse::index_t>(64 + rng.next_below(2000));
    const double density = 0.001 + rng.next_double() * 0.05;
    const auto nnz = static_cast<sparse::nnz_t>(
        std::max(1.0, density * rows * cols));

    SerpensConfig cfg = SerpensConfig::a16();
    cfg.arch.ha_channels = 1u + static_cast<unsigned>(rng.next_below(4));
    cfg.arch.window = 16u * static_cast<unsigned>(1 + rng.next_below(32));
    cfg.arch.dsp_latency = 1u + static_cast<unsigned>(rng.next_below(12));
    cfg.arch.coalescing = rng.next_below(2) == 0;

    const CooMatrix m = sparse::make_uniform_random(rows, cols, nnz, rng.next_u64());
    const Accelerator acc(cfg);
    const auto prepared = acc.prepare(m);

    // Round-trip check: the encoded image holds exactly the input matrix.
    CooMatrix norm = m;
    norm.sort_row_major();
    const auto decoded = encode::decode_image(prepared.image());
    ASSERT_EQ(decoded.size(), norm.nnz());

    std::vector<float> x(cols), y(rows);
    for (float& v : x)
        v = rng.next_float(-2.0f, 2.0f);
    for (float& v : y)
        v = rng.next_float(-2.0f, 2.0f);
    const float alpha = rng.next_float(-2.0f, 2.0f);
    const float beta = rng.next_float(-2.0f, 2.0f);

    const auto result = acc.run(prepared, x, y, alpha, beta);
    const auto ref = baselines::spmv_csr_ref64(sparse::to_csr(m), x, y, alpha, beta);
    for (std::size_t r = 0; r < ref.size(); ++r) {
        const double tol = 2e-4 * std::max(1.0, std::abs(ref[r]));
        ASSERT_NEAR(result.y[r], ref[r], tol)
            << "seed " << GetParam().seed << " row " << r;
    }

    // Cycle-model invariants hold for every random geometry.
    const auto ideal = core::ideal_cycles(cfg.arch, rows, cols, m.nnz());
    EXPECT_GE(result.cycles.compute_cycles + result.cycles.x_load_cycles +
                  result.cycles.y_phase_cycles,
              ideal);
    EXPECT_EQ(result.cycles.total_slots - result.cycles.padding_slots, m.nnz());

    // The schedules underneath this image are valid and match the reference
    // scheduler's quality, on the exact address streams the encoder saw.
    std::size_t checked = 0;
    for (const auto& addrs : lane_addr_streams(m, cfg.arch)) {
        if (checked >= 12)
            break;
        if (addrs.size() < 2)
            continue;
        ++checked;
        const auto fast = encode::schedule_hazard_aware(
            addrs, cfg.arch.dsp_latency, cfg.arch.policy);
        expect_valid_schedule(fast, addrs, cfg.arch.dsp_latency);
        if (::testing::Test::HasFatalFailure())
            return;
        const auto ref = encode::schedule_hazard_aware_reference(
            addrs, cfg.arch.dsp_latency, cfg.arch.policy);
        EXPECT_EQ(fast.padding_count, ref.padding_count)
            << "seed " << GetParam().seed;
    }
}

std::vector<E2ECase> e2e_seeds()
{
    std::vector<E2ECase> cases;
    for (std::uint64_t s = 1; s <= 24; ++s)
        cases.push_back({s * 7919});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, EndToEndProperty,
                         ::testing::ValuesIn(e2e_seeds()));

// Exactness property: integer-valued data must be bit-exact regardless of
// accumulation order, across random geometries.
class ExactnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactnessProperty, IntegerMatricesAreBitExact)
{
    Rng rng(GetParam());
    SerpensConfig cfg = SerpensConfig::a16();
    cfg.arch.ha_channels = 1u + static_cast<unsigned>(rng.next_below(3));
    cfg.arch.window = 64u + 16u * static_cast<unsigned>(rng.next_below(8));

    const auto rows = static_cast<sparse::index_t>(100 + rng.next_below(400));
    const CooMatrix m = sparse::make_uniform_random(
        rows, rows, 20 * rows, rng.next_u64(),
        sparse::ValueOptions{.exact_values = true});

    std::vector<float> x(rows), y(rows, 0.0f);
    for (float& v : x)
        v = rng.next_exact_float(4);

    const Accelerator acc(cfg);
    const auto result = acc.run(acc.prepare(m), x, y, 1.0f, 0.0f);
    const auto ref = baselines::spmv_csr_ref64(sparse::to_csr(m), x, y, 1.0f, 0.0f);
    for (std::size_t r = 0; r < ref.size(); ++r)
        ASSERT_EQ(result.y[r], static_cast<float>(ref[r])) << "row " << r;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactnessProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// Batching-history property: a fixed matrix served by run_batch calls of
// random widths must produce, for every column, exactly the bits a direct
// run() on the same vectors produces — no state can leak from one batched
// call (or width) into the next. The trace is driven by one fixed PRNG so
// a failure replays deterministically.
TEST(EndToEndPropertyBatchTrace, ResultsIndependentOfBatchingHistory)
{
    Rng rng(0xB47C4);
    const CooMatrix m = sparse::make_uniform_random(1000, 1200, 30'000, 97);
    const Accelerator acc(SerpensConfig::a16());
    const auto prepared = acc.prepare(m);

    for (unsigned call = 0; call < 12; ++call) {
        const auto b = 1u + static_cast<unsigned>(rng.next_below(12));
        std::vector<std::vector<float>> xs(b), ys(b);
        for (unsigned k = 0; k < b; ++k) {
            xs[k].resize(m.cols());
            ys[k].resize(m.rows());
            for (float& v : xs[k])
                v = rng.next_float(-2.0f, 2.0f);
            for (float& v : ys[k])
                v = rng.next_float(-2.0f, 2.0f);
        }
        const float alpha = rng.next_float(-2.0f, 2.0f);
        const float beta = rng.next_float(-2.0f, 2.0f);

        const core::BatchRunResult batch =
            acc.run_batch(prepared, xs, ys, alpha, beta);
        ASSERT_EQ(batch.size(), b);
        EXPECT_EQ(batch.batch_cycles.batch, b);
        EXPECT_GT(batch.amortized_time_ms, 0.0);
        for (unsigned k = 0; k < b; ++k) {
            const core::RunResult direct =
                acc.run(prepared, xs[k], ys[k], alpha, beta);
            ASSERT_EQ(batch[k].y.size(), direct.y.size());
            for (std::size_t r = 0; r < direct.y.size(); ++r)
                ASSERT_EQ(float_bits(batch[k].y[r]), float_bits(direct.y[r]))
                    << "call " << call << " width " << b << " column " << k
                    << " row " << r;
            EXPECT_EQ(batch[k].cycles.total_cycles(),
                      direct.cycles.total_cycles())
                << "call " << call << " column " << k;
        }
    }
}

} // namespace
} // namespace serpens
