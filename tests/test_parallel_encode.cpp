// Determinism and correctness of the parallel per-channel encoder.
//
// The encode stage parallelizes across HBM channels; the contract is that
// the produced image is *byte-identical* for every thread count, so a
// multi-core preprocessing box and a laptop produce the same artifact.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "core/accelerator.h"
#include "encode/image.h"
#include "encode/serialize.h"
#include "sparse/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace serpens {
namespace {

using encode::EncodeOptions;
using encode::EncodeParams;
using encode::SerpensImage;

std::string image_bytes(const SerpensImage& img)
{
    std::ostringstream out;
    encode::save_image(out, img);
    return std::move(out).str();
}

TEST(ParallelEncode, IdenticalBytesAcrossThreadCounts)
{
    const auto m = sparse::make_uniform_random(4096, 8192, 120'000, 17);
    EncodeParams params;
    params.window = 1024; // several segments so every channel does real work

    EncodeOptions serial;
    serial.threads = 1;
    const std::string golden = image_bytes(encode::encode_matrix(m, params, serial));

    for (const unsigned threads : {2u, 8u}) {
        EncodeOptions opt;
        opt.threads = threads;
        const SerpensImage img = encode::encode_matrix(m, params, opt);
        EXPECT_EQ(image_bytes(img), golden)
            << "thread count " << threads << " changed the encoded image";
    }
}

TEST(ParallelEncode, AutoThreadCountMatchesSerial)
{
    const auto m = sparse::make_clustered(2048, 60'000, 8, 64, 0.3, 23);
    EncodeParams params;
    params.window = 512;

    EncodeOptions serial;
    serial.threads = 1;
    EncodeOptions auto_threads;
    auto_threads.threads = 0; // one worker per hardware thread
    EXPECT_EQ(image_bytes(encode::encode_matrix(m, params, auto_threads)),
              image_bytes(encode::encode_matrix(m, params, serial)));
}

TEST(ParallelEncode, StatsIndependentOfThreadCount)
{
    const auto m = sparse::make_banded(4096, 12, 29);
    EncodeParams params;
    params.window = 256;
    EncodeOptions serial, parallel;
    serial.threads = 1;
    parallel.threads = 8;
    const auto a = encode::encode_matrix(m, params, serial).stats();
    const auto b = encode::encode_matrix(m, params, parallel).stats();
    EXPECT_EQ(a.total_slots, b.total_slots);
    EXPECT_EQ(a.padding_slots, b.padding_slots);
    EXPECT_EQ(a.total_lines, b.total_lines);
    EXPECT_EQ(a.nnz, b.nnz);
}

TEST(ParallelEncode, AcceleratorThreadsOptionKeepsResultsBitIdentical)
{
    // Same matrix, same vectors: a parallel-encode accelerator must produce
    // bit-identical SpMV results, because the image (and so the
    // accumulation order) is unchanged.
    const auto m = sparse::make_uniform_random(1500, 1500, 30'000, 5);
    Rng rng(77);
    std::vector<float> x(1500), y(1500);
    for (float& v : x)
        v = rng.next_float(-1.0f, 1.0f);
    for (float& v : y)
        v = rng.next_float(-1.0f, 1.0f);

    core::SerpensConfig serial_cfg = core::SerpensConfig::a16();
    serial_cfg.encode_threads = 1;
    core::SerpensConfig parallel_cfg = core::SerpensConfig::a16();
    parallel_cfg.encode_threads = 8;

    const core::Accelerator serial_acc(serial_cfg);
    const core::Accelerator parallel_acc(parallel_cfg);
    const auto ra = serial_acc.run(serial_acc.prepare(m), x, y, 1.5f, -0.5f);
    const auto rb = parallel_acc.run(parallel_acc.prepare(m), x, y, 1.5f, -0.5f);
    ASSERT_EQ(ra.y.size(), rb.y.size());
    for (std::size_t i = 0; i < ra.y.size(); ++i)
        EXPECT_EQ(float_bits(ra.y[i]), float_bits(rb.y[i])) << "row " << i;
    EXPECT_EQ(ra.cycles.total_cycles(), rb.cycles.total_cycles());
}

// The pool itself: full coverage of the index range, caller participation,
// and exception propagation.
TEST(ThreadPool, RunsEveryItemExactlyOnce)
{
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "item " << i;
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    util::ThreadPool pool(3);
    for (int round = 0; round < 10; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    util::ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(64,
                                   [&](std::size_t i) {
                                       if (i == 13)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<int> ran{0};
    pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, SerialPoolStillRuns)
{
    util::ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    int count = 0;
    pool.parallel_for(5, [&](std::size_t) { ++count; });
    EXPECT_EQ(count, 5);
}

TEST(ThreadPool, ResolveThreads)
{
    EXPECT_EQ(util::resolve_threads(3), 3u);
    EXPECT_GE(util::resolve_threads(0), 1u);
}

} // namespace
} // namespace serpens
