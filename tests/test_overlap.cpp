// Tests for the double-buffered x-load extension.
#include <gtest/gtest.h>

#include "core/accelerator.h"
#include "core/resource_model.h"
#include "encode/image.h"
#include "sim/simulator.h"
#include "sparse/generators.h"
#include "util/bitpack.h"

namespace serpens {
namespace {

using core::Accelerator;
using core::SerpensConfig;

SerpensConfig base_config()
{
    SerpensConfig c = SerpensConfig::a16();
    c.arch.ha_channels = 2;
    c.arch.window = 128;
    return c;
}

TEST(Overlap, FunctionalResultUnchanged)
{
    const auto m = sparse::make_uniform_random(500, 2000, 20'000, 1);
    SerpensConfig off = base_config();
    SerpensConfig on = base_config();
    on.double_buffer_x = true;

    std::vector<float> x(2000, 0.5f), y(500, 1.0f);
    const auto r_off = Accelerator(off).run(Accelerator(off).prepare(m), x, y,
                                            2.0f, -1.0f);
    const auto r_on = Accelerator(on).run(Accelerator(on).prepare(m), x, y,
                                          2.0f, -1.0f);
    EXPECT_EQ(r_off.y, r_on.y);
}

TEST(Overlap, NeverSlower)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto m = sparse::make_uniform_random(400, 3000, 15'000, seed);
        SerpensConfig off = base_config();
        SerpensConfig on = base_config();
        on.double_buffer_x = true;
        const auto r_off =
            Accelerator(off).run(Accelerator(off).prepare(m),
                                 std::vector<float>(3000, 1.0f),
                                 std::vector<float>(400, 0.0f));
        const auto r_on =
            Accelerator(on).run(Accelerator(on).prepare(m),
                                std::vector<float>(3000, 1.0f),
                                std::vector<float>(400, 0.0f));
        EXPECT_LE(r_on.cycles.total_cycles(), r_off.cycles.total_cycles());
        EXPECT_EQ(r_on.cycles.compute_cycles, r_off.cycles.compute_cycles);
    }
}

TEST(Overlap, FirstSegmentAlwaysPaysItsLoad)
{
    // Single-segment matrix: there is nothing to overlap with, so the two
    // modes must count identical x-load cycles.
    const auto m = sparse::make_uniform_random(100, 100, 1000, 4);
    SerpensConfig on = base_config();
    on.double_buffer_x = true;
    const auto r = Accelerator(on).run(Accelerator(on).prepare(m),
                                       std::vector<float>(100, 1.0f),
                                       std::vector<float>(100, 0.0f));
    EXPECT_EQ(r.cycles.x_load_cycles, ceil_div<std::uint64_t>(100, 16));
}

TEST(Overlap, FullyHiddenWhenComputeDominates)
{
    // Deep compute per segment: every load after the first hides entirely.
    const auto m = sparse::make_uniform_random(2000, 512, 60'000, 5);
    SerpensConfig on = base_config();  // window 128 -> 4 segments
    on.double_buffer_x = true;
    const Accelerator acc(on);
    const auto prepared = acc.prepare(m);
    const auto r = acc.run(prepared, std::vector<float>(512, 1.0f),
                           std::vector<float>(2000, 0.0f));
    // Only segment 0's load (128/16 = 8 lines) remains visible.
    EXPECT_EQ(r.cycles.x_load_cycles, 8u);
}

TEST(Overlap, PartialHidingCountsResidual)
{
    // Craft: segment 0 has deep compute, segment 1 has zero compute, so
    // segment 1's load hides fully behind segment 0; a third segment with
    // empty predecessor pays in full.
    sparse::CooMatrix m(256, 384);  // 3 segments at window 128
    // Segment 0: plenty of work.
    for (sparse::index_t i = 0; i < 256; ++i)
        m.add(i, i % 128, 1.0f);
    // Segment 1: empty. Segment 2: one element.
    m.add(0, 300, 1.0f);

    SerpensConfig on = base_config();
    on.double_buffer_x = true;
    const Accelerator acc(on);
    const auto prepared = acc.prepare(m);
    const auto r = acc.run(prepared, std::vector<float>(384, 1.0f),
                           std::vector<float>(256, 0.0f));

    // Segment 0 load: 8 cycles (visible). Segment 1 load: hidden behind
    // segment 0 compute (2 lines... at least partially) — compute depth of
    // segment 0 is prepared.image().segment_depth(0).
    const std::uint64_t d0 = prepared.image().segment_depth(0);
    const std::uint64_t hidden1 = std::min<std::uint64_t>(8, d0);
    const std::uint64_t d1 = prepared.image().segment_depth(1);
    const std::uint64_t hidden2 = std::min<std::uint64_t>(8, d1);
    EXPECT_EQ(r.cycles.x_load_cycles, 8 + (8 - hidden1) + (8 - hidden2));
}

TEST(Overlap, ResourceModelChargesBrams)
{
    SerpensConfig off = SerpensConfig::a16();
    SerpensConfig on = off;
    on.double_buffer_x = true;
    const auto r_off = core::estimate_resources(off);
    const auto r_on = core::estimate_resources(on);
    EXPECT_EQ(r_on.brams - r_off.brams, 32ull * 16);  // one extra Eq.1 set
    EXPECT_EQ(r_on.urams, r_off.urams);
    EXPECT_EQ(r_on.dsps, r_off.dsps);
}

} // namespace
} // namespace serpens
