// End-to-end tests of the Accelerator facade.
#include <gtest/gtest.h>

#include "baselines/cpu_spmv.h"
#include "core/accelerator.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "util/rng.h"

namespace serpens::core {
namespace {

using sparse::CooMatrix;

SerpensConfig test_config()
{
    SerpensConfig c = SerpensConfig::a16();
    c.arch.ha_channels = 2;
    c.arch.window = 128;
    return c;
}

std::vector<float> random_vector(std::size_t n, std::uint64_t seed)
{
    serpens::Rng rng(seed);
    std::vector<float> v(n);
    for (float& x : v)
        x = rng.next_float(-1.0f, 1.0f);
    return v;
}

TEST(Accelerator, PrepareThenRunMatchesReference)
{
    const Accelerator acc(test_config());
    const CooMatrix m = sparse::make_uniform_random(400, 600, 8000, 1);
    const PreparedMatrix prepared = acc.prepare(m);
    EXPECT_EQ(prepared.rows(), 400u);
    EXPECT_EQ(prepared.cols(), 600u);
    EXPECT_EQ(prepared.nnz(), m.nnz());

    const auto x = random_vector(600, 2);
    const auto y = random_vector(400, 3);
    const RunResult r = acc.run(prepared, x, y, 1.5f, -0.5f);

    const auto ref =
        baselines::spmv_csr_ref64(sparse::to_csr(m), x, y, 1.5f, -0.5f);
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(r.y[i], ref[i], 1e-4 * std::max(1.0, std::abs(ref[i])));
}

TEST(Accelerator, PreparedMatrixIsReusable)
{
    const Accelerator acc(test_config());
    const CooMatrix m = sparse::make_banded(256, 6, 4);
    const PreparedMatrix prepared = acc.prepare(m);
    const auto x1 = random_vector(256, 5);
    const auto x2 = random_vector(256, 6);
    const std::vector<float> y(256, 0.0f);

    const RunResult r1 = acc.run(prepared, x1, y);
    const RunResult r2 = acc.run(prepared, x2, y);
    const RunResult r1_again = acc.run(prepared, x1, y);
    EXPECT_EQ(r1.y, r1_again.y);  // no state leaks between runs
    EXPECT_NE(r1.y, r2.y);
}

TEST(Accelerator, TimeAndMetricsArePopulated)
{
    const Accelerator acc(test_config());
    const CooMatrix m = sparse::make_uniform_random(512, 512, 20'000, 7);
    const PreparedMatrix prepared = acc.prepare(m);
    const std::vector<float> x(512, 1.0f), y(512, 0.0f);
    const RunResult r = acc.run(prepared, x, y);

    EXPECT_GT(r.time_ms, 0.0);
    EXPECT_GT(r.metrics.gflops, 0.0);
    EXPECT_NEAR(r.metrics.gflops, 2e-3 * r.metrics.mteps, 1e-9);
    EXPECT_GT(r.cycles.total_cycles(), 0u);
    EXPECT_DOUBLE_EQ(r.metrics.exec_ms, r.time_ms);
}

TEST(Accelerator, TimeIncludesInvocationOverhead)
{
    SerpensConfig c = test_config();
    c.invocation_overhead_us = 1000.0;  // 1 ms
    const Accelerator acc(c);
    const CooMatrix m = sparse::make_diagonal(64);
    const PreparedMatrix prepared = acc.prepare(m);
    const std::vector<float> x(64), y(64);
    const RunResult r = acc.run(prepared, x, y);
    EXPECT_GT(r.time_ms, 1.0);
}

TEST(Accelerator, StreamEfficiencyStretchesTime)
{
    SerpensConfig fast = test_config();
    fast.hbm.stream_efficiency = 1.0;
    SerpensConfig slow = test_config();
    slow.hbm.stream_efficiency = 0.5;

    const CooMatrix m = sparse::make_uniform_random(256, 256, 20'000, 8);
    const std::vector<float> x(256), y(256);

    const RunResult rf = Accelerator(fast).run(Accelerator(fast).prepare(m), x, y);
    const RunResult rs = Accelerator(slow).run(Accelerator(slow).prepare(m), x, y);
    EXPECT_GT(rs.time_ms, rf.time_ms);
    EXPECT_EQ(rf.y, rs.y);  // efficiency is a timing knob, not functional
}

TEST(Accelerator, CapacityErrorSurfaceses)
{
    SerpensConfig c = test_config();
    c.arch.urams_per_pe = 1;
    c.arch.uram_depth = 4;  // capacity = 2 * 16 * 4 = 128 rows
    const Accelerator acc(c);
    EXPECT_EQ(acc.row_capacity(), 128u);
    EXPECT_THROW(acc.prepare(sparse::make_diagonal(200)),
                 serpens::CapacityError);
}

TEST(Accelerator, RejectsInvalidConfig)
{
    SerpensConfig c = test_config();
    c.frequency_mhz = 0.0;
    EXPECT_THROW(Accelerator{c}, std::invalid_argument);
    c = test_config();
    c.hbm.stream_efficiency = 0.0;
    EXPECT_THROW(Accelerator{c}, std::invalid_argument);
    c = test_config();
    c.arch.window = 24;  // not multiple of 16
    EXPECT_THROW(Accelerator{c}, std::invalid_argument);
}

TEST(Accelerator, EstimateTracksSimulationWithin2x)
{
    // The closed-form estimate (fed with the measured padding ratio) must
    // stay within 2x of the simulated time — it is used for full-size
    // projections in the benches.
    const Accelerator acc(test_config());
    const CooMatrix m = sparse::make_uniform_random(1024, 2048, 60'000, 9);
    const PreparedMatrix prepared = acc.prepare(m);
    const std::vector<float> x(2048), y(1024);
    const RunResult r = acc.run(prepared, x, y);
    const double est = acc.estimate_time_ms(
        1024, 2048, m.nnz(), prepared.encode_stats().padding_ratio());
    EXPECT_GT(est, 0.5 * r.time_ms);
    EXPECT_LT(est, 2.0 * r.time_ms);
}

TEST(Accelerator, A16PresetRunsWideMatrix)
{
    // Full A16 geometry (128 PEs) on a matrix wider than one window.
    const Accelerator acc(SerpensConfig::a16());
    const CooMatrix m = sparse::make_uniform_random(5000, 20'000, 100'000, 10);
    const PreparedMatrix prepared = acc.prepare(m);
    const auto x = random_vector(20'000, 11);
    const auto y = random_vector(5000, 12);
    const RunResult r = acc.run(prepared, x, y, 1.0f, 1.0f);
    const auto ref = baselines::spmv_csr_ref64(sparse::to_csr(m), x, y, 1.0f, 1.0f);
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(r.y[i], ref[i], 1e-4 * std::max(1.0, std::abs(ref[i])));
    EXPECT_EQ(prepared.image().num_segments(), 3u);  // ceil(20000/8192)
}

} // namespace
} // namespace serpens::core
