// Shared validator for hazard-aware schedules.
//
// Any ScheduleResult, from any scheduler implementation, must satisfy the
// same fundamental invariant: the real slots are a permutation of the input
// indices, and two slots carrying equal conflict addresses are at least
// `window` slots apart. expect_valid_schedule asserts exactly that (plus
// the bookkeeping counters), so every suite that touches a scheduler —
// unit, differential, end-to-end — checks the one shared definition of
// "valid" instead of re-deriving it.
//
// The helper uses ASSERT_*, so call it from a void context and guard with
// testing::Test::HasFatalFailure() if the caller must stop on failure.
#pragma once

#include <gtest/gtest.h>

#include <span>
#include <unordered_map>
#include <vector>

#include "encode/schedule.h"

namespace serpens::encode {

inline void expect_valid_schedule(const ScheduleResult& r,
                                  std::span<const std::uint32_t> addrs,
                                  unsigned window)
{
    std::vector<bool> seen(addrs.size(), false);
    std::unordered_map<std::uint32_t, std::size_t> last_slot;
    last_slot.reserve(addrs.size());
    for (std::size_t slot = 0; slot < r.slots.size(); ++slot) {
        const std::int64_t idx = r.slots[slot];
        if (idx == ScheduleResult::kPaddingSlot)
            continue;
        ASSERT_GE(idx, 0);
        ASSERT_LT(static_cast<std::size_t>(idx), addrs.size());
        ASSERT_FALSE(seen[static_cast<std::size_t>(idx)]) << "duplicate emission";
        seen[static_cast<std::size_t>(idx)] = true;
        const std::uint32_t addr = addrs[static_cast<std::size_t>(idx)];
        const auto it = last_slot.find(addr);
        if (it != last_slot.end()) {
            ASSERT_GE(slot - it->second, window)
                << "hazard at slot " << slot << " addr " << addr;
        }
        last_slot[addr] = slot;
    }
    for (std::size_t i = 0; i < addrs.size(); ++i)
        ASSERT_TRUE(seen[i]) << "element " << i << " missing from schedule";
    EXPECT_EQ(r.real_count, addrs.size());
    EXPECT_EQ(r.padding_count, r.slots.size() - addrs.size());
}

} // namespace serpens::encode
