// Tests for image serialization: round-trips, error paths, and the
// end-to-end "preprocess offline, load, run" workflow.
#include <gtest/gtest.h>

#include <sstream>

#include "core/accelerator.h"
#include "encode/decode.h"
#include "encode/serialize.h"
#include "sparse/generators.h"

namespace serpens::encode {
namespace {

EncodeParams small_params()
{
    EncodeParams p;
    p.ha_channels = 2;
    p.window = 128;
    return p;
}

SerpensImage make_image(std::uint64_t seed = 3)
{
    const auto m = sparse::make_uniform_random(300, 400, 3000, seed);
    return encode_matrix(m, small_params());
}

TEST(Serialize, RoundTripPreservesEverything)
{
    const SerpensImage img = make_image();
    std::stringstream buf;
    save_image(buf, img);
    const SerpensImage back = load_image(buf);

    EXPECT_EQ(back.rows(), img.rows());
    EXPECT_EQ(back.cols(), img.cols());
    EXPECT_EQ(back.num_segments(), img.num_segments());
    EXPECT_EQ(back.channels(), img.channels());
    EXPECT_EQ(back.params().window, img.params().window);
    EXPECT_EQ(back.params().coalescing, img.params().coalescing);
    for (unsigned c = 0; c < img.channels(); ++c) {
        ASSERT_EQ(back.channel(c).size(), img.channel(c).size());
        for (std::size_t i = 0; i < img.channel(c).size(); ++i)
            ASSERT_EQ(back.channel(c).line(i), img.channel(c).line(i));
        for (unsigned s = 0; s < img.num_segments(); ++s)
            ASSERT_EQ(back.segment_lines(c, s), img.segment_lines(c, s));
    }
}

TEST(Serialize, StatsRecomputedOnLoad)
{
    const SerpensImage img = make_image();
    std::stringstream buf;
    save_image(buf, img);
    const SerpensImage back = load_image(buf);
    EXPECT_EQ(back.stats().nnz, img.stats().nnz);
    EXPECT_EQ(back.stats().total_slots, img.stats().total_slots);
    EXPECT_EQ(back.stats().padding_slots, img.stats().padding_slots);
}

TEST(Serialize, DecodedMatrixSurvivesRoundTrip)
{
    const auto m = sparse::make_banded(256, 8, 9);
    const SerpensImage img = encode_matrix(m, small_params());
    std::stringstream buf;
    save_image(buf, img);
    const SerpensImage back = load_image(buf);
    EXPECT_EQ(decode_image(back), decode_image(img));
    EXPECT_NO_THROW(verify_image(back));
}

TEST(Serialize, FileRoundTripAndRun)
{
    // The production workflow: encode, save, load, wrap, run.
    const std::string path = ::testing::TempDir() + "/serpens_image_test.img";
    const auto m = sparse::make_uniform_random(200, 200, 2000, 5);

    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.arch = small_params();
    const core::Accelerator acc(cfg);

    save_image_file(path, encode_matrix(m, cfg.arch));
    auto prepared = core::PreparedMatrix::from_image(load_image_file(path));

    std::vector<float> x(200, 1.0f), y(200, 0.0f);
    const auto from_file = acc.run(prepared, x, y);
    const auto direct = acc.run(acc.prepare(m), x, y);
    EXPECT_EQ(from_file.y, direct.y);
    EXPECT_EQ(from_file.cycles.total_cycles(), direct.cycles.total_cycles());
}

TEST(Serialize, LoadedImagePopulatesDecodeCacheLikeEncodePath)
{
    // Regression for the --load-image path: a loaded image must reach the
    // same warmed decode-cache state the encode path reaches — warm_decode
    // populates it up front (the CLI and the serving registry's admission
    // both call it), and the first run off either path uses the cache.
    const std::string path = ::testing::TempDir() + "/serpens_warm_test.img";
    const auto m = sparse::make_uniform_random(220, 220, 2400, 7);

    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.arch = small_params();
    const core::Accelerator acc(cfg);

    const auto encoded = acc.prepare(m);
    save_image_file(path, encoded.image());

    const auto loaded = core::PreparedMatrix::from_image(load_image_file(path));
    EXPECT_FALSE(loaded.decode_cached());
    loaded.warm_decode();
    EXPECT_TRUE(loaded.decode_cached());

    // Warm state equals the encode path's post-first-run state, including
    // the footprint accounting both paths feed into the registry budget.
    std::vector<float> x(220, 0.5f), y(220, 1.0f);
    const auto direct = acc.run(encoded, x, y, 1.5f, -0.5f);
    EXPECT_TRUE(encoded.decode_cached());
    EXPECT_EQ(loaded.memory_footprint_bytes(),
              encoded.memory_footprint_bytes());

    const auto from_loaded = acc.run(loaded, x, y, 1.5f, -0.5f);
    EXPECT_EQ(from_loaded.y, direct.y);
    EXPECT_EQ(from_loaded.cycles.total_cycles(),
              direct.cycles.total_cycles());
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream buf;
    buf << "NOPE this is not an image";
    EXPECT_THROW(load_image(buf), ImageFormatError);
}

TEST(Serialize, RejectsTruncatedHeader)
{
    const SerpensImage img = make_image();
    std::stringstream buf;
    save_image(buf, img);
    const std::string full = buf.str();
    std::stringstream cut(full.substr(0, 16));
    EXPECT_THROW(load_image(cut), ImageFormatError);
}

TEST(Serialize, RejectsTruncatedLineData)
{
    const SerpensImage img = make_image();
    std::stringstream buf;
    save_image(buf, img);
    const std::string full = buf.str();
    std::stringstream cut(full.substr(0, full.size() - 32));
    EXPECT_THROW(load_image(cut), ImageFormatError);
}

TEST(Serialize, RejectsUnknownVersion)
{
    const SerpensImage img = make_image();
    std::stringstream buf;
    save_image(buf, img);
    std::string bytes = buf.str();
    bytes[4] = 99;  // version byte
    std::stringstream bad(bytes);
    EXPECT_THROW(load_image(bad), ImageFormatError);
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(load_image_file("/nonexistent/path.img"), ImageFormatError);
}

std::string serialized_bytes(const SerpensImage& img,
                             std::uint32_t version = kImageFormatVersion)
{
    std::stringstream buf;
    save_image(buf, img, version);
    return buf.str();
}

SerpensImage small_image()
{
    // Small on purpose: the fuzz tests below load thousands of mutated
    // copies, so the byte count is the test's run time.
    const auto m = sparse::make_uniform_random(60, 80, 400, 11);
    return encode_matrix(m, small_params());
}

TEST(Serialize, EveryTruncationIsRejectedNeverMisloaded)
{
    // Exhaustive truncation fuzz: every proper prefix of a v2 image must
    // throw ImageFormatError — a torn download can never come back as a
    // shorter-but-plausible image.
    const std::string full = serialized_bytes(small_image());
    ASSERT_GT(full.size(), 64u);
    for (std::size_t n = 0; n < full.size(); ++n) {
        std::stringstream cut(full.substr(0, n));
        EXPECT_THROW(load_image(cut), ImageFormatError) << "prefix " << n;
    }
}

TEST(Serialize, SingleBitFlipsAreRejected)
{
    // Integrity fuzz: with every section checksummed, a single flipped bit
    // anywhere in the file must be rejected. The magic and version fields
    // sit outside the CRCs, but flips there fail their own validation (a
    // bad magic, or a version that is neither 1 nor 2 — no single-bit flip
    // turns 2 into 1).
    const std::string full = serialized_bytes(small_image());
    const std::size_t total_bits = full.size() * 8;
    for (std::size_t bit = 0; bit < total_bits;
         bit += (bit < 64 * 8 ? 1 : 101)) {
        std::string bad = full;
        bad[bit / 8] = static_cast<char>(bad[bit / 8] ^ (1 << (bit % 8)));
        std::stringstream in(bad);
        EXPECT_THROW(load_image(in), ImageFormatError) << "bit " << bit;
    }
}

TEST(Serialize, TrailingBytesAfterV2ImageAreRejected)
{
    std::string bytes = serialized_bytes(small_image());
    bytes += '\0';
    std::stringstream in(bytes);
    EXPECT_THROW(load_image(in), ImageFormatError);
}

TEST(Serialize, Version1FilesRemainLoadable)
{
    // Integrity checking is an upgrade, not a migration: a pre-CRC v1
    // image still loads and decodes identically.
    const SerpensImage img = make_image();
    const std::string v1 = serialized_bytes(img, 1);
    const std::string v2 = serialized_bytes(img);
    EXPECT_LT(v1.size(), v2.size());  // v2 carries the checksums

    std::stringstream in(v1);
    const SerpensImage back = load_image(in);
    EXPECT_EQ(decode_image(back), decode_image(img));
}

TEST(Serialize, RefusesToWriteUnknownVersions)
{
    const SerpensImage img = small_image();
    std::stringstream buf;
    EXPECT_THROW(save_image(buf, img, 3), ImageFormatError);
    EXPECT_THROW(save_image(buf, img, 0), ImageFormatError);
}

TEST(Serialize, ChecksumMismatchNamesTheSection)
{
    // Corrupt one byte in the middle of the line data: the error should
    // point at a checksum, not at a generic parse failure.
    std::string bytes = serialized_bytes(small_image());
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
    std::stringstream in(bytes);
    try {
        load_image(in);
        FAIL() << "corrupted image loaded";
    } catch (const ImageFormatError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
            << e.what();
    }
}

TEST(Serialize, EmptyMatrixImageRoundTrips)
{
    const sparse::CooMatrix m(64, 64);
    const SerpensImage img = encode_matrix(m, small_params());
    std::stringstream buf;
    save_image(buf, img);
    const SerpensImage back = load_image(buf);
    EXPECT_EQ(back.stats().nnz, 0u);
    for (unsigned c = 0; c < back.channels(); ++c)
        EXPECT_TRUE(back.channel(c).empty());
}

} // namespace
} // namespace serpens::encode
