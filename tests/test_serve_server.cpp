// serve::Server lockdown.
//
// The serving contract: for ANY number of client threads, matrices, scalar
// groups, and request interleavings, every response's y + CycleStats are
// bit-identical to a direct Accelerator::run on the same inputs — the
// request scheduler's coalescing is pure amortization, never a numeric
// change. Deterministic coalescing behavior (grouping, max_batch chunking,
// scalar-group separation) is pinned through pause()/resume() bursts.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens {
namespace {

struct Vectors {
    std::vector<float> x, y;
};

Vectors random_vectors(sparse::index_t cols, sparse::index_t rows,
                       std::uint64_t seed)
{
    Rng rng(seed);
    Vectors v;
    v.x.resize(cols);
    v.y.resize(rows);
    for (float& f : v.x)
        f = rng.next_float(-1.0f, 1.0f);
    for (float& f : v.y)
        f = rng.next_float(-1.0f, 1.0f);
    return v;
}

void expect_result_equal(const core::RunResult& served,
                         const core::RunResult& direct,
                         const std::string& label)
{
    ASSERT_EQ(served.y.size(), direct.y.size()) << label;
    for (std::size_t i = 0; i < served.y.size(); ++i)
        ASSERT_EQ(float_bits(served.y[i]), float_bits(direct.y[i]))
            << label << " row " << i;
    EXPECT_EQ(served.cycles.compute_cycles, direct.cycles.compute_cycles)
        << label;
    EXPECT_EQ(served.cycles.x_load_cycles, direct.cycles.x_load_cycles)
        << label;
    EXPECT_EQ(served.cycles.y_phase_cycles, direct.cycles.y_phase_cycles)
        << label;
    EXPECT_EQ(served.cycles.fill_cycles, direct.cycles.fill_cycles) << label;
    EXPECT_EQ(served.cycles.total_slots, direct.cycles.total_slots) << label;
    EXPECT_EQ(served.cycles.padding_slots, direct.cycles.padding_slots)
        << label;
    EXPECT_DOUBLE_EQ(served.time_ms, direct.time_ms) << label;
}

TEST(ServeServer, BlockingSpmvMatchesDirectRun)
{
    const auto m = sparse::make_uniform_random(1500, 1500, 40'000, 21);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    serve::Server server(cfg);
    server.registry().admit("m", m);

    const core::Accelerator acc(cfg);
    const auto prepared = acc.prepare(m);

    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const Vectors v = random_vectors(m.cols(), m.rows(), seed);
        const serve::SpmvResult served =
            server.spmv("m", v.x, v.y, 1.25f, -0.5f);
        const core::RunResult direct =
            acc.run(prepared, v.x, v.y, 1.25f, -0.5f);
        expect_result_equal(served.run, direct,
                            "seed " + std::to_string(seed));
        EXPECT_GE(served.batch_width, 1u);
    }
}

TEST(ServeServer, UnknownMatrixAndBadSizesThrow)
{
    const auto m = sparse::make_banded(512, 5, 23);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);

    const Vectors v = random_vectors(m.cols(), m.rows(), 5);
    EXPECT_THROW(server.spmv("ghost", v.x, v.y), std::invalid_argument);
    EXPECT_THROW(server.spmv("m", std::vector<float>(3), v.y),
                 std::invalid_argument);
    EXPECT_THROW(server.spmv("m", v.x, std::vector<float>(3)),
                 std::invalid_argument);
}

TEST(ServeServer, PausedBurstCoalescesToMaxBatch)
{
    const auto m = sparse::make_uniform_random(1200, 1200, 30'000, 29);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_batch = 8;
    serve::Server server(cfg);
    server.registry().admit("m", m);

    // 11 same-key requests held in one round: widths must chunk to 8 + 3.
    server.pause();
    std::vector<std::future<serve::SpmvResult>> futures;
    for (unsigned i = 0; i < 11; ++i) {
        const Vectors v = random_vectors(m.cols(), m.rows(), 100 + i);
        futures.push_back(server.submit("m", v.x, v.y, 2.0f, 0.5f));
    }
    server.resume();

    unsigned eights = 0, threes = 0;
    for (auto& f : futures) {
        const serve::SpmvResult r = f.get();
        if (r.batch_width == 8)
            ++eights;
        else if (r.batch_width == 3)
            ++threes;
    }
    EXPECT_EQ(eights, 8u);
    EXPECT_EQ(threes, 3u);

    server.drain();
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 11u);
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.coalesced, 11u);
    EXPECT_EQ(stats.max_batch_seen, 8u);
    EXPECT_EQ(stats.rounds, 1u);
}

TEST(ServeServer, ScalarGroupsDoNotCoalesce)
{
    const auto m = sparse::make_uniform_random(1000, 1000, 25'000, 31);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);

    server.pause();
    std::vector<std::future<serve::SpmvResult>> group_a, group_b, single;
    for (unsigned i = 0; i < 3; ++i) {
        const Vectors v = random_vectors(m.cols(), m.rows(), 200 + i);
        group_a.push_back(server.submit("m", v.x, v.y, 1.0f, 0.0f));
    }
    for (unsigned i = 0; i < 2; ++i) {
        const Vectors v = random_vectors(m.cols(), m.rows(), 300 + i);
        group_b.push_back(server.submit("m", v.x, v.y, 1.0f, 1.0f));
    }
    {
        // -0.0f and 0.0f are distinct bit patterns — must not merge.
        const Vectors v = random_vectors(m.cols(), m.rows(), 400);
        single.push_back(server.submit("m", v.x, v.y, 1.0f, -0.0f));
    }
    server.resume();

    for (auto& f : group_a)
        EXPECT_EQ(f.get().batch_width, 3u);
    for (auto& f : group_b)
        EXPECT_EQ(f.get().batch_width, 2u);
    EXPECT_EQ(single[0].get().batch_width, 1u);
}

TEST(ServeServer, MultiMatrixBurstGroupsPerMatrix)
{
    const auto a = sparse::make_uniform_random(900, 900, 20'000, 37);
    const auto b = sparse::make_banded(800, 7, 41);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("a", a);
    server.registry().admit("b", b);

    server.pause();
    std::vector<std::future<serve::SpmvResult>> fa, fb;
    for (unsigned i = 0; i < 4; ++i) {
        const Vectors v = random_vectors(a.cols(), a.rows(), 500 + i);
        fa.push_back(server.submit("a", v.x, v.y));
    }
    for (unsigned i = 0; i < 2; ++i) {
        const Vectors v = random_vectors(b.cols(), b.rows(), 600 + i);
        fb.push_back(server.submit("b", v.x, v.y));
    }
    server.resume();
    for (auto& f : fa)
        EXPECT_EQ(f.get().batch_width, 4u);
    for (auto& f : fb)
        EXPECT_EQ(f.get().batch_width, 2u);
}

// The tentpole differential: N client threads x M matrices x mixed scalars
// hammering the server concurrently; the recorded trace replayed
// sequentially through a direct Accelerator must match every response bit
// for bit. Run for both a serial and a parallel drain loop.
void hammer_and_replay(unsigned serve_threads)
{
    const std::vector<sparse::CooMatrix> matrices = {
        sparse::make_uniform_random(1100, 1100, 30'000, 43),
        sparse::make_clustered(900, 22'000, 8, 64, 0.3, 47),
        sparse::make_banded(1000, 9, 53),
    };
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.serve_threads = serve_threads;
    cfg.max_batch = 4;

    struct Record {
        unsigned matrix;
        std::uint64_t seed;
        float alpha, beta;
        core::RunResult run;
    };
    constexpr unsigned kClients = 8, kRequests = 6;
    std::vector<Record> records(kClients * kRequests);

    {
        serve::Server server(cfg);
        for (unsigned i = 0; i < matrices.size(); ++i)
            server.registry().admit("m" + std::to_string(i), matrices[i]);

        std::atomic<bool> failed{false};
        std::vector<std::thread> clients;
        for (unsigned c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                try {
                    for (unsigned r = 0; r < kRequests; ++r) {
                        Record& rec = records[c * kRequests + r];
                        rec.seed = 1000 + c * 131 + r * 17;
                        rec.matrix =
                            static_cast<unsigned>(rec.seed % matrices.size());
                        rec.alpha = rec.seed % 2 ? 1.0f : 1.75f;
                        rec.beta = rec.seed % 3 ? 0.0f : -0.25f;
                        const auto& m = matrices[rec.matrix];
                        const Vectors v =
                            random_vectors(m.cols(), m.rows(), rec.seed);
                        rec.run = server
                                      .spmv("m" + std::to_string(rec.matrix),
                                            v.x, v.y, rec.alpha, rec.beta)
                                      .run;
                    }
                } catch (...) {
                    failed.store(true);
                }
            });
        }
        for (std::thread& t : clients)
            t.join();
        ASSERT_FALSE(failed.load());
    }

    // Sequential replay of the trace.
    const core::Accelerator acc(core::SerpensConfig::a16());
    std::vector<core::PreparedMatrix> prepared;
    for (const auto& m : matrices)
        prepared.push_back(acc.prepare(m));
    for (std::size_t i = 0; i < records.size(); ++i) {
        const Record& rec = records[i];
        const auto& m = matrices[rec.matrix];
        const Vectors v = random_vectors(m.cols(), m.rows(), rec.seed);
        const core::RunResult direct =
            acc.run(prepared[rec.matrix], v.x, v.y, rec.alpha, rec.beta);
        expect_result_equal(rec.run, direct,
                            "request " + std::to_string(i));
    }
}

TEST(ServeServer, ConcurrentClientsMatchSequentialReplaySerialDrain)
{
    hammer_and_replay(1);
}

TEST(ServeServer, ConcurrentClientsMatchSequentialReplayParallelDrain)
{
    hammer_and_replay(4);
}

TEST(ServeServer, EvictionMidFlightKeepsPinnedRequestsCorrect)
{
    const auto a = sparse::make_uniform_random(1000, 1000, 25'000, 59);
    const auto b = sparse::make_uniform_random(1000, 1000, 25'000, 61);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    // Budget for one resident at a time.
    {
        const core::Accelerator probe(cfg);
        const auto p = probe.prepare(a);
        p.warm_decode();
        cfg.resident_budget_bytes = p.memory_footprint_bytes() +
                                    p.memory_footprint_bytes() / 2;
    }
    serve::Server server(cfg);
    server.registry().admit("a", a);

    // Queue requests against a while paused, evict a by admitting b, then
    // release: the pinned resident must still serve them, bit-identically.
    server.pause();
    std::vector<std::future<serve::SpmvResult>> futures;
    for (unsigned i = 0; i < 3; ++i) {
        const Vectors v = random_vectors(a.cols(), a.rows(), 700 + i);
        futures.push_back(server.submit("a", v.x, v.y, 1.0f, 0.0f));
    }
    server.registry().admit("b", b);
    EXPECT_EQ(server.registry().get("a"), nullptr);
    server.resume();

    const core::Accelerator acc(core::SerpensConfig::a16());
    const auto prepared = acc.prepare(a);
    for (unsigned i = 0; i < 3; ++i) {
        const Vectors v = random_vectors(a.cols(), a.rows(), 700 + i);
        const core::RunResult direct = acc.run(prepared, v.x, v.y, 1.0f, 0.0f);
        expect_result_equal(futures[i].get().run, direct,
                            "pinned request " + std::to_string(i));
    }

    // New submissions for the evicted name fail fast.
    const Vectors v = random_vectors(a.cols(), a.rows(), 800);
    EXPECT_THROW(server.spmv("a", v.x, v.y), std::invalid_argument);
}

TEST(ServeServer, EvictionMidFlightKeepsPinnedBatchOfEightCorrect)
{
    // The B=1 eviction case above, at full SpMM width: eight same-key
    // requests coalesce into ONE run_batch against a resident that is
    // evicted from the registry while they sit queued. The pinned
    // shared_ptr must keep the matrix (and its decode cache + batch-mode
    // accounting) alive through the whole batched invocation.
    const auto a = sparse::make_uniform_random(1000, 1000, 25'000, 83);
    const auto b = sparse::make_uniform_random(1000, 1000, 25'000, 89);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_batch = 8;
    {
        const core::Accelerator probe(cfg);
        const auto p = probe.prepare(a);
        p.warm_decode();
        cfg.resident_budget_bytes = p.memory_footprint_bytes() +
                                    p.memory_footprint_bytes() / 2;
    }
    serve::Server server(cfg);
    server.registry().admit("a", a);

    server.pause();
    std::vector<std::future<serve::SpmvResult>> futures;
    for (unsigned i = 0; i < 8; ++i) {
        const Vectors v = random_vectors(a.cols(), a.rows(), 850 + i);
        futures.push_back(server.submit("a", v.x, v.y, 1.5f, -0.25f));
    }
    server.registry().admit("b", b);
    EXPECT_EQ(server.registry().get("a"), nullptr);
    server.resume();

    const core::Accelerator acc(core::SerpensConfig::a16());
    const auto prepared = acc.prepare(a);
    double shared_amortized = 0.0;
    for (unsigned i = 0; i < 8; ++i) {
        const serve::SpmvResult r = futures[i].get();
        EXPECT_EQ(r.batch_width, 8u);
        const Vectors v = random_vectors(a.cols(), a.rows(), 850 + i);
        const core::RunResult direct =
            acc.run(prepared, v.x, v.y, 1.5f, -0.25f);
        expect_result_equal(r.run, direct,
                            "pinned batch member " + std::to_string(i));
        if (i == 0)
            shared_amortized = r.device_amortized_ms;
        EXPECT_EQ(r.device_amortized_ms, shared_amortized);
        EXPECT_LT(r.device_amortized_ms, r.run.time_ms);
    }
}

TEST(ServeServer, SubmitFuturesCarryTelemetry)
{
    const auto m = sparse::make_banded(600, 5, 67);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);

    const Vectors v = random_vectors(m.cols(), m.rows(), 900);
    const serve::SpmvResult r = server.spmv("m", v.x, v.y);
    EXPECT_GE(r.queue_ms, 0.0);
    EXPECT_GT(r.service_ms, 0.0);
    EXPECT_GE(r.batch_width, 1u);

    server.drain();
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests, 1u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_GE(stats.rounds, 1u);
    EXPECT_GT(stats.mean_batch_width(), 0.0);
    EXPECT_EQ(stats.queue_hist.count(), 1u);
    EXPECT_EQ(stats.service_hist.count(), 1u);
    EXPECT_EQ(stats.width_hist[1], 1u);
}

// Regression: queue_ms used to stop at round pickup, so on a serial drain
// every group in the round reported near-zero queue time even though later
// groups sat queued behind earlier groups' execution. Queue time must run
// until the request's OWN batch starts.
TEST(ServeServer, QueueTimeRunsUntilTheRequestsOwnBatchStarts)
{
    // Two groups with very different service times: a heavy matrix and a
    // light one. serve_threads = 1 drains the round serially, and groups
    // execute in submit order (earliest first), so the light request's
    // batch starts only after the heavy batch finishes.
    const auto heavy = sparse::make_uniform_random(4096, 4096, 400'000, 311);
    const auto light = sparse::make_banded(256, 3, 313);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.serve_threads = 1;
    serve::Server server(cfg);
    server.registry().admit("heavy", heavy);
    server.registry().admit("light", light);

    server.pause();
    const Vectors vh = random_vectors(heavy.cols(), heavy.rows(), 1);
    const Vectors vl = random_vectors(light.cols(), light.rows(), 2);
    auto slow = server.submit("heavy", vh.x, vh.y);
    auto fast = server.submit("light", vl.x, vl.y);
    server.resume();

    const serve::SpmvResult slow_r = slow.get();
    const serve::SpmvResult fast_r = fast.get();
    ASSERT_GT(slow_r.service_ms, 0.0);
    // The light request was submitted before the round started, then its
    // batch waited out the heavy batch's whole execution: its queue time
    // must cover at least that service time. Under the old accounting it
    // measured only submit -> round start (essentially zero here).
    EXPECT_GE(fast_r.queue_ms, slow_r.service_ms);
    EXPECT_LE(slow_r.queue_ms, fast_r.queue_ms);
}

// Regression: dispatch_loop's shutdown drain used to be reachable only via
// the !paused_ arm of its wait predicate, which could leave a paused
// server's queue undrained at destruction. Stop overrides pause: every
// accepted request gets its response.
TEST(ServeServer, DestructionDrainsPausedQueue)
{
    const auto m = sparse::make_banded(400, 5, 331);
    std::vector<std::future<serve::SpmvResult>> futures;
    {
        serve::Server server(core::SerpensConfig::a16());
        server.registry().admit("m", m);
        server.pause();
        for (unsigned i = 0; i < 5; ++i) {
            const Vectors v = random_vectors(m.cols(), m.rows(), 400 + i);
            futures.push_back(server.submit("m", v.x, v.y));
        }
        // Destructor runs with the server still paused.
    }
    for (auto& f : futures) {
        const serve::SpmvResult r = f.get();
        EXPECT_EQ(r.run.y.size(), 400u);
    }
}

TEST(ServeServer, PausedServerRunsNoRounds)
{
    const auto m = sparse::make_banded(400, 5, 337);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);

    server.pause();
    const Vectors v = random_vectors(m.cols(), m.rows(), 7);
    auto f = server.submit("m", v.x, v.y);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(server.stats().rounds, 0u);
    server.resume();
    (void)f.get();
    server.drain();  // settle the post-round bookkeeping before reading
    EXPECT_GE(server.stats().rounds, 1u);
}

TEST(ServeServer, AdmissionBoundRejectsLoudlyAndCountsIt)
{
    const auto m = sparse::make_banded(400, 5, 347);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_queue_depth = 2;
    serve::Server server(cfg);
    server.registry().admit("m", m);

    server.pause();
    const Vectors v = random_vectors(m.cols(), m.rows(), 11);
    auto f1 = server.submit("m", v.x, v.y);
    auto f2 = server.submit("m", v.x, v.y);
    EXPECT_THROW(server.submit("m", v.x, v.y), serve::QueueFullError);
    EXPECT_THROW(server.submit("m", v.x, v.y), serve::QueueFullError);
    EXPECT_EQ(server.stats().rejected, 2u);

    // Rejection is fast-fail, not poison: once the queue drains the same
    // client admits again.
    server.resume();
    (void)f1.get();
    (void)f2.get();
    server.drain();
    EXPECT_NO_THROW((void)server.spmv("m", v.x, v.y));
    EXPECT_EQ(server.stats().rejected, 2u);
}

TEST(ServeServer, SloControllerShrinksWidthUnderQueuePressure)
{
    const auto m = sparse::make_banded(400, 5, 353);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_batch = 8;
    cfg.slo_queue_ms = 1e-6;  // unmeetable: every round violates the SLO
    serve::Server server(cfg);
    server.registry().admit("m", m);
    ASSERT_EQ(server.current_max_batch(), 8u);

    const Vectors v = random_vectors(m.cols(), m.rows(), 13);
    // Each round's p99 queue time exceeds the (absurd) target, so each
    // round halves the width: 8 -> 4 -> 2 -> 1, then it floors.
    for (unsigned round = 0; round < 5; ++round) {
        (void)server.spmv("m", v.x, v.y);
        server.drain();
    }
    EXPECT_EQ(server.current_max_batch(), 1u);
    const auto stats = server.stats();
    EXPECT_EQ(stats.batch_shrinks, 3u);
    EXPECT_EQ(stats.batch_grows, 0u);
    EXPECT_EQ(stats.current_max_batch, 1u);
    EXPECT_GT(stats.p99_queue_ewma_ms, 0.0);
}

TEST(ServeServer, SloControllerGrowsBackWhenQueueTimesRecover)
{
    const auto m = sparse::make_banded(400, 5, 359);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_batch = 8;
    cfg.slo_queue_ms = 60.0;
    serve::Server server(cfg);
    server.registry().admit("m", m);

    // One artificially slow round: hold a burst paused well past the SLO
    // so the seeded EWMA lands far above 60 ms and the width shrinks.
    server.pause();
    std::vector<std::future<serve::SpmvResult>> futures;
    const Vectors v = random_vectors(m.cols(), m.rows(), 17);
    for (unsigned i = 0; i < 4; ++i)
        futures.push_back(server.submit("m", v.x, v.y));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server.resume();
    for (auto& f : futures)
        (void)f.get();
    server.drain();
    EXPECT_GE(server.stats().batch_shrinks, 1u);
    EXPECT_LT(server.current_max_batch(), 8u);

    // Healthy rounds (queue times far below slo/2) decay the EWMA and the
    // width doubles back toward the configured ceiling.
    for (unsigned round = 0; round < 12; ++round) {
        (void)server.spmv("m", v.x, v.y);
        server.drain();
    }
    EXPECT_GE(server.stats().batch_grows, 1u);
    EXPECT_EQ(server.current_max_batch(), 8u);
}

TEST(ServeServer, SetBatchingResetsTheControllerAndWidth)
{
    const auto m = sparse::make_banded(400, 5, 367);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_batch = 8;
    cfg.slo_queue_ms = 1e-6;
    serve::Server server(cfg);
    server.registry().admit("m", m);

    const Vectors v = random_vectors(m.cols(), m.rows(), 19);
    (void)server.spmv("m", v.x, v.y);
    server.drain();
    EXPECT_LT(server.current_max_batch(), 8u);

    server.set_batching(/*max_batch=*/4, /*slo_queue_ms=*/0.0,
                        /*batch_wait_ms=*/0.0, /*max_queue_depth=*/0);
    EXPECT_EQ(server.current_max_batch(), 4u);
    // SLO off: widths stay put no matter the queue times.
    (void)server.spmv("m", v.x, v.y);
    server.drain();
    EXPECT_EQ(server.current_max_batch(), 4u);
    EXPECT_DOUBLE_EQ(server.stats().p99_queue_ewma_ms, 0.0);
}

TEST(ServeServer, BatchWaitHoldsSingleRequestsButNotFullBatches)
{
    const auto m = sparse::make_banded(400, 5, 373);
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    cfg.max_batch = 4;
    cfg.batch_wait_ms = 200.0;
    serve::Server server(cfg);
    server.registry().admit("m", m);

    // A full batch dispatches without waiting out the hold.
    server.pause();
    std::vector<std::future<serve::SpmvResult>> futures;
    const Vectors v = random_vectors(m.cols(), m.rows(), 23);
    for (unsigned i = 0; i < 4; ++i)
        futures.push_back(server.submit("m", v.x, v.y));
    server.resume();
    for (auto& f : futures) {
        const serve::SpmvResult r = f.get();
        EXPECT_EQ(r.batch_width, 4u);
        EXPECT_LT(r.queue_ms, 150.0);
    }

    // A lone request rides out the full hold waiting for company.
    const serve::SpmvResult lone = server.spmv("m", v.x, v.y);
    EXPECT_EQ(lone.batch_width, 1u);
    EXPECT_GE(lone.queue_ms, 150.0);
}

TEST(ServeServer, ExpiredDeadlineShedsAtBatchFormingAndIsCounted)
{
    const auto m = sparse::make_banded(400, 5, 379);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);

    // Hold two requests paused past the first one's 10 ms budget. The
    // expired one must shed with DeadlineExceededError; its companion (no
    // deadline) rides the same round untouched.
    server.pause();
    const Vectors v = random_vectors(m.cols(), m.rows(), 29);
    auto doomed = server.submit("m", v.x, v.y, 1.0f, 0.0f,
                                /*deadline_ms=*/10.0);
    auto healthy = server.submit("m", v.x, v.y, 1.0f, 0.0f);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    server.resume();

    EXPECT_THROW((void)doomed.get(), serve::DeadlineExceededError);
    EXPECT_NO_THROW((void)healthy.get());
    server.drain();

    const auto stats = server.stats();
    EXPECT_EQ(stats.shed, 1u);
    // Shed requests never count as served work: requests reflects only the
    // healthy one (plus nothing else), and no batch slot was burned.
    EXPECT_EQ(stats.requests, 1u);
    EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServeServer, GenerousDeadlineDoesNotShed)
{
    const auto m = sparse::make_banded(400, 5, 383);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);

    const Vectors v = random_vectors(m.cols(), m.rows(), 31);
    const serve::SpmvResult r =
        server.spmv("m", v.x, v.y, 1.0f, 0.0f, /*deadline_ms=*/60'000.0);
    EXPECT_EQ(r.batch_width, 1u);
    server.drain();
    EXPECT_EQ(server.stats().shed, 0u);
    EXPECT_EQ(server.stats().requests, 1u);
}

TEST(ServeServer, AllExpiredGroupRunsNoBatch)
{
    const auto m = sparse::make_banded(400, 5, 389);
    serve::Server server(core::SerpensConfig::a16());
    server.registry().admit("m", m);

    server.pause();
    const Vectors v = random_vectors(m.cols(), m.rows(), 37);
    std::vector<std::future<serve::SpmvResult>> futures;
    for (unsigned i = 0; i < 4; ++i)
        futures.push_back(
            server.submit("m", v.x, v.y, 1.0f, 0.0f, /*deadline_ms=*/5.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.resume();

    for (auto& f : futures)
        EXPECT_THROW((void)f.get(), serve::DeadlineExceededError);
    server.drain();

    const auto stats = server.stats();
    EXPECT_EQ(stats.shed, 4u);
    EXPECT_EQ(stats.requests, 0u);
    // A round whose every member expired dispatches nothing to the device.
    EXPECT_EQ(stats.batches, 0u);
}

} // namespace
} // namespace serpens
