// Tests for the Table 3 stand-ins and the SuiteSparse-like collection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datasets/suite.h"
#include "datasets/table3.h"
#include "sparse/convert.h"

namespace serpens::datasets {
namespace {

TEST(Table3, TwelveSpecsMatchPaper)
{
    const auto& specs = twelve_large();
    ASSERT_EQ(specs.size(), 12u);
    EXPECT_EQ(specs[0].id, "G1");
    EXPECT_EQ(specs[0].name, "googleplus");
    EXPECT_EQ(specs[11].id, "G12");
    EXPECT_EQ(specs[11].rows, 2'450'000u);
    EXPECT_EQ(specs[11].nnz, 124'000'000u);
    // Sextans support pattern from Table 4: G7, G9-G12 are "-".
    EXPECT_TRUE(std::isnan(specs[6].paper.sextans_ms));
    EXPECT_TRUE(std::isnan(specs[8].paper.sextans_ms));
    EXPECT_FALSE(std::isnan(specs[7].paper.sextans_ms));  // G8 runs
    // Every matrix has GraphLily and Serpens measurements.
    for (const auto& s : specs) {
        EXPECT_FALSE(std::isnan(s.paper.graphlily_ms)) << s.id;
        EXPECT_FALSE(std::isnan(s.paper.serpens_a16_ms)) << s.id;
        EXPECT_GT(s.paper.serpens_a24_gflops, 0.0) << s.id;
    }
}

TEST(Table3, SerpensAlwaysFasterExceptG1)
{
    // Paper: Serpens loses to GraphLily only on G1.
    for (const auto& s : twelve_large()) {
        if (s.id == "G1") {
            EXPECT_GT(s.paper.serpens_a16_ms, s.paper.graphlily_ms);
        } else {
            EXPECT_LT(s.paper.serpens_a16_ms, s.paper.graphlily_ms);
        }
    }
}

TEST(Table3, RealizeScalesDimensions)
{
    const auto& spec = twelve_large()[1];  // crankseg_2
    const auto m = realize(spec, 16);
    EXPECT_NEAR(static_cast<double>(m.rows()),
                static_cast<double>(spec.rows) / 16.0,
                static_cast<double>(spec.rows) / 16.0 * 0.05);
    // NNZ within 40% of target (generators coalesce duplicates).
    EXPECT_GT(m.nnz(), spec.nnz / 16 * 6 / 10);
    EXPECT_LT(m.nnz(), spec.nnz / 16 * 14 / 10);
}

TEST(Table3, RealizeIsDeterministic)
{
    const auto& spec = twelve_large()[0];
    const auto a = realize(spec, 64);
    const auto b = realize(spec, 64);
    EXPECT_EQ(a.elements(), b.elements());
}

TEST(Table3, KindsProduceDistinctStructure)
{
    // Social graphs must be noticeably more skewed than FEM bands.
    const auto social = sparse::to_csr(realize(twelve_large()[0], 64));  // G1
    const auto fem = sparse::to_csr(realize(twelve_large()[1], 64));     // G2
    EXPECT_GT(social.row_imbalance(), 2.0 * fem.row_imbalance());
}

TEST(Table3, FoldSquarePreservesNnzUpToCoalescing)
{
    sparse::CooMatrix m(8, 8);
    m.add(7, 7, 1.0f);
    m.add(3, 2, 2.0f);
    const auto folded = fold_square(m, 5);
    EXPECT_EQ(folded.rows(), 5u);
    EXPECT_EQ(folded.nnz(), 2u);  // (2,2) and (3,2)
}

TEST(Table3, AllTwelveRealizableAtSmallScale)
{
    for (const auto& spec : twelve_large()) {
        const auto m = realize(spec, 256);
        EXPECT_GT(m.nnz(), 0u) << spec.id;
        EXPECT_GT(m.rows(), 0u) << spec.id;
    }
}

// --- Suite ---

TEST(Suite, SampleCountAndDeterminism)
{
    SuiteSpec spec;
    spec.count = 40;
    const auto a = sample_suite(spec);
    const auto b = sample_suite(spec);
    ASSERT_EQ(a.size(), 40u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].nnz, b[i].nnz);
        EXPECT_EQ(a[i].n, b[i].n);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }
}

TEST(Suite, SpansNnzRange)
{
    SuiteSpec spec;
    spec.count = 100;
    spec.min_nnz = 1'000;
    spec.max_nnz = 1'000'000;
    const auto recipes = sample_suite(spec);
    sparse::nnz_t lo = spec.max_nnz, hi = 0;
    for (const auto& r : recipes) {
        lo = std::min(lo, r.nnz);
        hi = std::max(hi, r.nnz);
        EXPECT_GE(r.nnz, spec.min_nnz);
        EXPECT_LE(r.nnz, spec.max_nnz);
    }
    // Log-uniform draw over 3 decades: both ends must be populated.
    EXPECT_LT(lo, 10'000u);
    EXPECT_GT(hi, 100'000u);
}

TEST(Suite, MixesKinds)
{
    SuiteSpec spec;
    spec.count = 60;
    std::set<SuiteKind> kinds;
    for (const auto& r : sample_suite(spec))
        kinds.insert(r.kind);
    EXPECT_EQ(kinds.size(), 3u);
}

TEST(Suite, RecipesRealizeWithinBounds)
{
    SuiteSpec spec;
    spec.count = 12;
    spec.max_nnz = 50'000;
    for (const auto& r : sample_suite(spec)) {
        const auto m = realize(r);
        EXPECT_EQ(m.rows(), r.n) << r.tag;
        EXPECT_EQ(m.cols(), r.n) << r.tag;
        EXPECT_GT(m.nnz(), 0u) << r.tag;
        // Target NNZ is approximate (coalescing), never exceeded by 2x.
        EXPECT_LT(m.nnz(), 2 * r.nnz + 16) << r.tag;
    }
}

TEST(Suite, DimensionRespectsDensityCap)
{
    SuiteSpec spec;
    spec.count = 200;
    for (const auto& r : sample_suite(spec)) {
        // nnz <= 0.5 * n^2 by the clamp, so banded/uniform can realize.
        EXPECT_LE(static_cast<double>(r.nnz),
                  0.55 * static_cast<double>(r.n) * static_cast<double>(r.n))
            << r.tag;
        EXPECT_LE(r.n, spec.max_dim);
        EXPECT_GE(r.n, 24u);
    }
}

TEST(Suite, RejectsBadSpec)
{
    SuiteSpec spec;
    spec.count = 0;
    EXPECT_THROW(sample_suite(spec), std::invalid_argument);
    spec = {};
    spec.min_nnz = 10'000;
    spec.max_nnz = 100;
    EXPECT_THROW(sample_suite(spec), std::invalid_argument);
}

} // namespace
} // namespace serpens::datasets
