// Tests for the cycle-level simulator: functional equivalence against the
// CPU reference and exact cycle accounting.
#include <gtest/gtest.h>

#include "baselines/cpu_spmv.h"
#include "encode/image.h"
#include "sim/simulator.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens::sim {
namespace {

using encode::EncodeParams;
using sparse::CooMatrix;
using sparse::index_t;

EncodeParams small_params()
{
    EncodeParams p;
    p.ha_channels = 2;
    p.window = 64;
    p.dsp_latency = 4;
    return p;
}

std::vector<float> random_vector(std::size_t n, std::uint64_t seed)
{
    serpens::Rng rng(seed);
    std::vector<float> v(n);
    for (float& x : v)
        x = rng.next_float(-1.0f, 1.0f);
    return v;
}

// Compare simulated FP32 output against the double-precision reference.
void expect_matches_reference(const CooMatrix& m, float alpha, float beta,
                              const EncodeParams& params,
                              std::uint64_t seed = 555)
{
    const auto img = encode::encode_matrix(m, params);
    const std::vector<float> x = random_vector(m.cols(), seed);
    const std::vector<float> y = random_vector(m.rows(), seed + 1);

    const SimResult sim = simulate_spmv(img, x, y, alpha, beta);
    const auto ref =
        baselines::spmv_csr_ref64(sparse::to_csr(m), x, y, alpha, beta);

    ASSERT_EQ(sim.y.size(), ref.size());
    for (std::size_t r = 0; r < ref.size(); ++r) {
        const double tol = 1e-4 * std::max(1.0, std::abs(ref[r]));
        EXPECT_NEAR(sim.y[r], ref[r], tol) << "row " << r;
    }
}

TEST(Simulator, MatchesReferenceOnDiagonal)
{
    expect_matches_reference(sparse::make_diagonal(100, 2.0f), 1.0f, 0.0f,
                             small_params());
}

TEST(Simulator, MatchesReferenceOnRandom)
{
    expect_matches_reference(sparse::make_uniform_random(300, 400, 5000, 3),
                             1.0f, 0.0f, small_params());
}

TEST(Simulator, MatchesReferenceWithAlphaBeta)
{
    expect_matches_reference(sparse::make_uniform_random(200, 200, 3000, 4),
                             2.5f, -0.75f, small_params());
}

TEST(Simulator, MatchesReferenceOnBanded)
{
    expect_matches_reference(sparse::make_banded(256, 8, 5), 1.0f, 1.0f,
                             small_params());
}

TEST(Simulator, MatchesReferenceOnHeavyRows)
{
    expect_matches_reference(sparse::make_dense_rows(8, 512, 4, 200, 6), 1.0f,
                             0.0f, small_params());
}

TEST(Simulator, MatchesReferenceWithoutCoalescing)
{
    EncodeParams p = small_params();
    p.coalescing = false;
    expect_matches_reference(sparse::make_uniform_random(150, 150, 2000, 7),
                             1.0f, 0.5f, p);
}

TEST(Simulator, ExactWithIntegerValues)
{
    // Integer-valued floats with row sums far below 2^24: every accumulation
    // order yields the same result, so the simulator must match the double
    // reference bit-for-bit after rounding.
    const CooMatrix m = sparse::make_uniform_random(
        128, 128, 2000, 8, sparse::ValueOptions{.exact_values = true});
    const auto img = encode::encode_matrix(m, small_params());
    std::vector<float> x(m.cols());
    serpens::Rng rng(11);
    for (float& v : x)
        v = rng.next_exact_float(4);
    const std::vector<float> y(m.rows(), 0.0f);

    const SimResult sim = simulate_spmv(img, x, y, 1.0f, 0.0f);
    const auto ref = baselines::spmv_csr_ref64(sparse::to_csr(m), x, y, 1.0f, 0.0f);
    for (std::size_t r = 0; r < ref.size(); ++r)
        ASSERT_EQ(sim.y[r], static_cast<float>(ref[r])) << "row " << r;
}

TEST(Simulator, BetaZeroIgnoresYInput)
{
    const CooMatrix m = sparse::make_diagonal(64);
    const auto img = encode::encode_matrix(m, small_params());
    const std::vector<float> x(64, 1.0f);
    const std::vector<float> garbage(64, 12345.0f);
    const SimResult sim = simulate_spmv(img, x, garbage, 1.0f, 0.0f);
    for (float v : sim.y)
        EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(Simulator, AlphaZeroGivesScaledY)
{
    const CooMatrix m = sparse::make_uniform_random(64, 64, 500, 12);
    const auto img = encode::encode_matrix(m, small_params());
    const std::vector<float> x = random_vector(64, 1);
    const std::vector<float> y = random_vector(64, 2);
    const SimResult sim = simulate_spmv(img, x, y, 0.0f, 2.0f);
    for (std::size_t r = 0; r < y.size(); ++r)
        EXPECT_FLOAT_EQ(sim.y[r], 2.0f * y[r]);
}

TEST(Simulator, ValidatesVectorLengths)
{
    const CooMatrix m = sparse::make_diagonal(64);
    const auto img = encode::encode_matrix(m, small_params());
    const std::vector<float> good(64), bad(63);
    EXPECT_THROW(simulate_spmv(img, bad, good, 1.0f, 0.0f),
                 std::invalid_argument);
    EXPECT_THROW(simulate_spmv(img, good, bad, 1.0f, 0.0f),
                 std::invalid_argument);
}

// --- Cycle accounting ---

TEST(Simulator, XLoadCyclesAreCeilSegWidthOver16)
{
    EncodeParams p = small_params();  // window 64
    const CooMatrix m = sparse::make_uniform_random(64, 200, 500, 13);
    const auto img = encode::encode_matrix(m, p);
    const std::vector<float> x(200), y(64);
    const SimResult sim = simulate_spmv(img, x, y, 1.0f, 0.0f);
    // Segments: 64 + 64 + 64 + 8 -> 4 + 4 + 4 + 1 lines.
    EXPECT_EQ(sim.cycles.x_load_cycles, 13u);
}

TEST(Simulator, YPhaseCyclesAreCeilRowsOver16)
{
    const CooMatrix m = sparse::make_diagonal(100);
    const auto img = encode::encode_matrix(m, small_params());
    const std::vector<float> x(100), y(100);
    const SimResult sim = simulate_spmv(img, x, y, 1.0f, 0.0f);
    EXPECT_EQ(sim.cycles.y_phase_cycles, serpens::ceil_div<std::uint64_t>(100, 16));
}

TEST(Simulator, ComputeCyclesEqualSumOfSegmentDepths)
{
    const CooMatrix m = sparse::make_uniform_random(128, 300, 4000, 14);
    const auto img = encode::encode_matrix(m, small_params());
    const std::vector<float> x(300), y(128);
    const SimResult sim = simulate_spmv(img, x, y, 1.0f, 0.0f);
    std::uint64_t expect = 0;
    for (unsigned s = 0; s < img.num_segments(); ++s)
        expect += img.segment_depth(s);
    EXPECT_EQ(sim.cycles.compute_cycles, expect);
}

TEST(Simulator, FillCyclesFollowOptions)
{
    const CooMatrix m = sparse::make_uniform_random(64, 200, 500, 15);
    const auto img = encode::encode_matrix(m, small_params());
    const std::vector<float> x(200), y(64);
    SimOptions opt;
    opt.fill_per_segment = 10;
    opt.fill_y_phase = 7;
    const SimResult sim = simulate_spmv(img, x, y, 1.0f, 0.0f, opt);
    EXPECT_EQ(sim.cycles.fill_cycles, 10u * img.num_segments() + 7u);
}

TEST(Simulator, SlotAccountingMatchesEncodeStats)
{
    const CooMatrix m = sparse::make_uniform_random(96, 256, 3000, 16);
    const auto img = encode::encode_matrix(m, small_params());
    const std::vector<float> x(256), y(96);
    const SimResult sim = simulate_spmv(img, x, y, 1.0f, 0.0f);
    EXPECT_EQ(sim.cycles.total_slots, img.stats().total_slots);
    EXPECT_EQ(sim.cycles.padding_slots, img.stats().padding_slots);
}

TEST(Simulator, TrafficIsSinglePass)
{
    // Paper §3.2: the matrix and each vector are moved exactly once.
    const CooMatrix m = sparse::make_uniform_random(160, 320, 2000, 17);
    const auto img = encode::encode_matrix(m, small_params());
    const std::vector<float> x(320), y(160);
    const SimResult sim = simulate_spmv(img, x, y, 1.0f, 0.0f);

    std::uint64_t a_bytes = 0;
    for (unsigned c = 0; c < img.channels(); ++c)
        a_bytes += img.channel(c).bytes();
    const std::uint64_t x_bytes =
        sim.cycles.x_load_cycles * hbm::kLineBytes;  // 1 line per load cycle
    const std::uint64_t y_bytes =
        serpens::ceil_div<std::uint64_t>(160, 16) * hbm::kLineBytes;
    EXPECT_EQ(sim.cycles.traffic.bytes_read, a_bytes + x_bytes + y_bytes);
    EXPECT_EQ(sim.cycles.traffic.bytes_written, y_bytes);
}

TEST(Simulator, IdealCyclesLowerBoundsCompute)
{
    // compute_cycles >= NNZ / (8 * HA) always (padding only adds).
    const CooMatrix m = sparse::make_uniform_random(128, 512, 6000, 18);
    const EncodeParams p = small_params();
    const auto img = encode::encode_matrix(m, p);
    const std::vector<float> x(512), y(128);
    const SimResult sim = simulate_spmv(img, x, y, 1.0f, 0.0f);
    const std::uint64_t ideal =
        serpens::ceil_div<std::uint64_t>(m.nnz(), 8ULL * p.ha_channels);
    EXPECT_GE(sim.cycles.compute_cycles, ideal);
}

// Equivalence property sweep over matrix families and alpha/beta.
struct SimCase {
    int family;  // 0 uniform, 1 banded, 2 rmat, 3 dense-rows, 4 diagonal
    float alpha;
    float beta;
    std::uint64_t seed;
};

class SimulatorEquivalence : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimulatorEquivalence, MatchesDoubleReference)
{
    const SimCase c = GetParam();
    CooMatrix m = [&] {
        switch (c.family) {
        case 0:
            return sparse::make_uniform_random(257, 389, 4000, c.seed);
        case 1:
            return sparse::make_banded(300, 10, c.seed);
        case 2:
            return sparse::make_rmat(8, 12, c.seed);
        case 3:
            return sparse::make_dense_rows(16, 400, 6, 150, c.seed);
        default:
            return sparse::make_diagonal(311);
        }
    }();
    expect_matches_reference(m, c.alpha, c.beta, small_params(), c.seed + 99);
}

std::vector<SimCase> sim_cases()
{
    std::vector<SimCase> cases;
    std::uint64_t seed = 10;
    for (int family = 0; family < 5; ++family)
        for (auto [a, b] : {std::pair{1.0f, 0.0f}, {1.0f, 1.0f},
                            {-2.0f, 0.5f}, {0.25f, -1.5f}})
            cases.push_back({family, a, b, seed++});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Families, SimulatorEquivalence,
                         ::testing::ValuesIn(sim_cases()));

} // namespace
} // namespace serpens::sim
