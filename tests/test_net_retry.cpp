// net::RetryingClient lockdown: the retry contract against a real daemon.
//
// Retryable failures (OVERLOADED, dropped/corrupted transport) are
// injected deterministically through util::FaultInjector, so each test
// pins an exact attempt/retry/reconnect count instead of racing timers.
// Non-retryable failures (RemoteError, DeadlineExceededError) must pass
// through on the first attempt.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "net/daemon.h"
#include "net/retry.h"
#include "serve/server.h"
#include "sparse/generators.h"
#include "util/fault.h"
#include "util/rng.h"

namespace serpens {
namespace {

constexpr int kClientTimeoutMs = 30'000;

// Installs a seeded injector for the test's scope. Declared BEFORE the
// daemon fixture in every test so the daemon (and its probing threads) is
// torn down first.
struct ScopedInjector {
    util::FaultInjector f;
    explicit ScopedInjector(std::uint64_t seed) : f(seed)
    {
        util::set_fault_injector(&f);
    }
    ~ScopedInjector() { util::set_fault_injector(nullptr); }
};

struct Fixture {
    core::SerpensConfig cfg = core::SerpensConfig::a16();
    serve::Server server;
    net::Daemon daemon;

    Fixture() : server(cfg), daemon(server, /*port=*/0)
    {
        server.registry().admit("m", sparse::make_banded(300, 4, 41));
    }
    ~Fixture() { daemon.stop(); }

    net::RetryingClient client(net::RetryPolicy policy = fast_policy()) const
    {
        return net::RetryingClient("127.0.0.1", daemon.port(),
                                   kClientTimeoutMs, policy);
    }

    static net::RetryPolicy fast_policy()
    {
        net::RetryPolicy p;
        p.initial_backoff_ms = 0.2;
        p.jitter = 0.0;  // exact backoff sequence, no timing slack needed
        return p;
    }
};

std::vector<float> ones(std::size_t n)
{
    return std::vector<float>(n, 1.0f);
}

TEST(NetRetry, RetriesOverloadedUntilAdmissionSucceeds)
{
    ScopedInjector chaos(1);
    Fixture fx;
    // Exactly three admissions refused, then the queue "drains".
    chaos.f.arm("serve.queue_full", 1.0, 0.0, /*max_fires=*/3);

    net::RetryingClient client = fx.client();
    const net::SpmvReply r =
        client.spmv("m", ones(300), ones(300), 1.0f, 0.0f);
    EXPECT_EQ(r.y.size(), 300u);
    EXPECT_EQ(client.stats().attempts, 4u);
    EXPECT_EQ(client.stats().retries, 3u);
    EXPECT_EQ(client.stats().reconnects, 1u);  // the lazy initial connect
    EXPECT_EQ(client.stats().giveups, 0u);
    EXPECT_EQ(fx.server.stats().rejected, 3u);
}

TEST(NetRetry, ReconnectsAfterADroppedFrame)
{
    ScopedInjector chaos(2);
    Fixture fx;
    chaos.f.arm("net.frame.drop", 1.0, 0.0, /*max_fires=*/1);

    net::RetryingClient client = fx.client();
    // The first request frame is dropped and the connection killed; the
    // retry must arrive on a FRESH connection and succeed.
    const net::SpmvReply r =
        client.spmv("m", ones(300), ones(300), 1.0f, 0.0f);
    EXPECT_EQ(r.y.size(), 300u);
    EXPECT_EQ(client.stats().retries, 1u);
    EXPECT_EQ(client.stats().reconnects, 2u);  // initial + rebuild
    EXPECT_EQ(chaos.f.fired("net.frame.drop"), 1u);
}

TEST(NetRetry, ReconnectsAfterACorruptedFrame)
{
    ScopedInjector chaos(3);
    Fixture fx;
    chaos.f.arm("net.frame.corrupt", 1.0, 0.0, /*max_fires=*/1);

    net::RetryingClient client = fx.client();
    const net::SpmvReply r =
        client.spmv("m", ones(300), ones(300), 1.0f, 0.0f);
    EXPECT_EQ(r.y.size(), 300u);
    EXPECT_EQ(client.stats().retries, 1u);
    EXPECT_EQ(client.stats().reconnects, 2u);
    EXPECT_EQ(chaos.f.fired("net.frame.corrupt"), 1u);
}

TEST(NetRetry, GivesUpAfterMaxAttemptsAndCountsIt)
{
    ScopedInjector chaos(4);
    Fixture fx;
    chaos.f.arm("serve.queue_full", 1.0);  // overloaded forever

    net::RetryPolicy policy = Fixture::fast_policy();
    policy.max_attempts = 3;
    net::RetryingClient client = fx.client(policy);
    EXPECT_THROW((void)client.spmv("m", ones(300), ones(300), 1.0f, 0.0f),
                 net::OverloadedError);
    EXPECT_EQ(client.stats().attempts, 3u);
    EXPECT_EQ(client.stats().retries, 2u);
    EXPECT_EQ(client.stats().giveups, 1u);
}

TEST(NetRetry, DoesNotRetryRemoteErrors)
{
    Fixture fx;
    net::RetryingClient client = fx.client();
    // The daemon executed the request and rejected it; a resend would get
    // the same answer, so exactly one attempt goes out.
    EXPECT_THROW(
        (void)client.spmv("ghost", ones(300), ones(300), 1.0f, 0.0f),
        net::RemoteError);
    EXPECT_EQ(client.stats().attempts, 1u);
    EXPECT_EQ(client.stats().retries, 0u);
    EXPECT_EQ(client.stats().giveups, 0u);
}

TEST(NetRetry, DoesNotRetryAnExpiredDeadline)
{
    Fixture fx;
    net::RetryingClient client = fx.client();
    // A vanishingly small budget always expires during queueing, with no
    // pause/sleep timing to race: the shed is deterministic.
    EXPECT_THROW((void)client.spmv("m", ones(300), ones(300), 1.0f, 0.0f,
                                   /*deadline_ms=*/1e-7),
                 net::DeadlineExceededError);
    // The budget is spent; a retry would arrive even later.
    EXPECT_EQ(client.stats().attempts, 1u);
    EXPECT_EQ(client.stats().retries, 0u);
}

TEST(NetRetry, NonSpmvOperationsRideTheSameRetryLoop)
{
    ScopedInjector chaos(5);
    Fixture fx;
    chaos.f.arm("net.frame.drop", 1.0, 0.0, /*max_fires=*/1);

    net::RetryingClient client = fx.client();
    EXPECT_NO_THROW(client.ping());
    EXPECT_EQ(client.stats().retries, 1u);
    EXPECT_NO_THROW(client.admit("m2", sparse::make_banded(100, 3, 43)));
    EXPECT_TRUE(client.evict("m2"));
    EXPECT_FALSE(client.evict("m2"));
}

TEST(NetRetry, CapsTheBackoffSleepAtTheRemainingDeadlineBudget)
{
    ScopedInjector chaos(6);
    Fixture fx;
    chaos.f.arm("serve.queue_full", 1.0);  // overloaded forever

    // The first backoff (1 s) dwarfs the 80 ms budget. The old loop slept
    // the full second and then sent a retry that could only arrive doomed;
    // the fix caps the sleep at the remaining budget and gives up.
    net::RetryPolicy policy = Fixture::fast_policy();
    policy.initial_backoff_ms = 1000.0;
    policy.max_backoff_ms = 1000.0;
    net::RetryingClient client = fx.client(policy);

    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW((void)client.spmv("m", ones(300), ones(300), 1.0f, 0.0f,
                                   /*deadline_ms=*/80.0),
                 net::DeadlineExceededError);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed_ms, 600.0);  // nowhere near the 1 s backoff
    // The doomed retry was never sent: one attempt, zero retries, and the
    // giveup is counted.
    EXPECT_EQ(client.stats().attempts, 1u);
    EXPECT_EQ(client.stats().retries, 0u);
    EXPECT_EQ(client.stats().giveups, 1u);
}

TEST(NetRetry, GivesUpInsteadOfRetryingPastTheDeadline)
{
    ScopedInjector chaos(7);
    Fixture fx;
    chaos.f.arm("serve.queue_full", 1.0);  // overloaded forever

    // 100 attempts x 50 ms flat backoff would burn ~5 s; a 250 ms budget
    // must bound the whole loop, not just each server-side queue wait.
    net::RetryPolicy policy = Fixture::fast_policy();
    policy.max_attempts = 100;
    policy.initial_backoff_ms = 50.0;
    policy.backoff_multiplier = 1.0;
    policy.max_backoff_ms = 50.0;
    net::RetryingClient client = fx.client(policy);

    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW((void)client.spmv("m", ones(300), ones(300), 1.0f, 0.0f,
                                   /*deadline_ms=*/250.0),
                 net::DeadlineExceededError);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed_ms, 3000.0);
    EXPECT_LE(client.stats().attempts, 8u);
    EXPECT_EQ(client.stats().retries, client.stats().attempts - 1);
    EXPECT_EQ(client.stats().giveups, 1u);
}

TEST(NetRetry, PolicyIsValidatedUpFront)
{
    net::RetryPolicy zero;
    zero.max_attempts = 0;
    EXPECT_THROW(net::RetryingClient("127.0.0.1", 1, 1000, zero),
                 std::invalid_argument);
    net::RetryPolicy wild;
    wild.jitter = 1.5;
    EXPECT_THROW(net::RetryingClient("127.0.0.1", 1, 1000, wild),
                 std::invalid_argument);
}

} // namespace
} // namespace serpens
