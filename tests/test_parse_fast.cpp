// Differential lockdown of the fast Matrix Market parser.
//
// The contract is the same as the scheduler's (PR 2): the fast path
// (read_matrix_market_fast — mmap/buffer + newline-aligned chunks +
// std::from_chars) must produce *triplet-identical* output to the istream
// reference (read_matrix_market_reference) on every input, for every thread
// count and chunk size. Bit-identical means: same dimensions, same nnz,
// same (row, col) sequence, and bit-equal FP32 values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sparse/generators.h"
#include "sparse/matrix_market.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace serpens::sparse {
namespace {

std::string to_mtx(const CooMatrix& m)
{
    std::ostringstream out;
    write_matrix_market(out, m);
    return std::move(out).str();
}

void expect_identical(const CooMatrix& fast, const CooMatrix& ref,
                      const std::string& label)
{
    ASSERT_EQ(fast.rows(), ref.rows()) << label;
    ASSERT_EQ(fast.cols(), ref.cols()) << label;
    ASSERT_EQ(fast.nnz(), ref.nnz()) << label;
    for (std::size_t i = 0; i < ref.nnz(); ++i) {
        const Triplet& a = fast.elements()[i];
        const Triplet& b = ref.elements()[i];
        ASSERT_EQ(a.row, b.row) << label << " triplet " << i;
        ASSERT_EQ(a.col, b.col) << label << " triplet " << i;
        ASSERT_EQ(float_bits(a.val), float_bits(b.val))
            << label << " triplet " << i;
    }
}

CooMatrix parse_reference(const std::string& text)
{
    std::istringstream in(text);
    return read_matrix_market_reference(in);
}

// Every thread count against the reference, on one text image.
void check_differential(const std::string& text, const std::string& label)
{
    const CooMatrix ref = parse_reference(text);
    for (const unsigned threads : {1u, 2u, 8u, 0u}) {
        ParseOptions opt;
        opt.threads = threads;
        expect_identical(read_matrix_market_fast(text, opt), ref,
                         label + " threads=" + std::to_string(threads));
    }
}

TEST(FastParseDifferential, GeneratedMatrixProperty)
{
    // Random matrices across the generator families and a size range that
    // exercises multi-chunk parses (chunk_bytes is forced small separately
    // in FastParseCorners).
    struct Case {
        CooMatrix m;
        std::string label;
    };
    std::vector<Case> cases;
    cases.push_back({make_uniform_random(500, 700, 6'000, 11), "uniform"});
    cases.push_back({make_banded(1024, 5, 13), "banded"});
    cases.push_back({make_clustered(512, 9'000, 4, 32, 0.25, 17), "clustered"});
    cases.push_back({make_rmat(9, 16, 19), "rmat"});
    cases.push_back({make_dense_rows(300, 300, 4, 128, 23), "dense_rows"});
    for (Case& c : cases)
        check_differential(to_mtx(c.m), c.label);
}

TEST(FastParseDifferential, ManySmallRandomMatrices)
{
    // Narrow matrices shake out header/first-entry/last-entry boundary
    // conditions that one big matrix would never hit.
    Rng rng(99);
    for (int round = 0; round < 25; ++round) {
        const auto rows = static_cast<index_t>(1 + rng.next_u64() % 40);
        const auto cols = static_cast<index_t>(1 + rng.next_u64() % 40);
        const auto nnz = std::clamp<nnz_t>(rng.next_u64() % 80, 1,
                                           static_cast<nnz_t>(rows) * cols);
        const auto m = make_uniform_random(rows, cols, nnz, 100 + round);
        check_differential(to_mtx(m), "round " + std::to_string(round));
    }
}

TEST(FastParseDifferential, SymmetricAndPatternMirrorOrder)
{
    // Symmetric expansion appends the mirror right after its entry; the
    // fast parser must reproduce that interleaved order, not sort.
    const std::string symmetric =
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "4 4 5\n"
        "1 1 1.5\n"
        "3 1 -2.25\n"
        "3 2 0.125\n"
        "4 3 7.0\n"
        "4 4 -0.5\n";
    check_differential(symmetric, "symmetric");

    const std::string pattern =
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "5 5 4\n"
        "2 1\n"
        "3 3\n"
        "5 2\n"
        "5 4\n";
    check_differential(pattern, "pattern symmetric");

    const std::string integer =
        "%%MatrixMarket matrix coordinate integer general\n"
        "3 3 3\n"
        "1 1 7\n"
        "2 3 -4\n"
        "3 2 1000000\n";
    check_differential(integer, "integer");
}

TEST(FastParseDifferential, StreamOverloadMatchesBuffer)
{
    const auto m = make_uniform_random(128, 96, 1'500, 31);
    const std::string text = to_mtx(m);
    std::istringstream in(text);
    expect_identical(read_matrix_market_fast(in, {}), parse_reference(text),
                     "istream overload");
}

// All golden fixtures under tests/data/ routed through both parsers: the
// well-formed ones must agree triplet-for-triplet, the truncated ones must
// throw from both.
std::string golden(const std::string& name)
{
    return std::string(SERPENS_TEST_DATA_DIR) + "/" + name;
}

TEST(FastParseGolden, WellFormedFilesAgree)
{
    for (const char* name : {"comments_run.mtx", "symmetric.mtx",
                             "pattern_symmetric.mtx", "one_based.mtx",
                             "crlf.mtx"}) {
        const CooMatrix ref = read_matrix_market_reference_file(golden(name));
        for (const unsigned threads : {1u, 8u}) {
            ParseOptions opt;
            opt.threads = threads;
            expect_identical(read_matrix_market_fast_file(golden(name), opt),
                             ref, name);
        }
    }
}

TEST(FastParseGolden, TruncatedFilesThrowFromBothParsers)
{
    for (const char* name : {"truncated_entries.mtx", "truncated_size.mtx",
                             "truncated_value.mtx"}) {
        EXPECT_THROW(read_matrix_market_reference_file(golden(name)),
                     MatrixMarketError)
            << name;
        EXPECT_THROW(read_matrix_market_fast_file(golden(name), {}),
                     MatrixMarketError)
            << name;
    }
}

TEST(FastParseGolden, ErrorMessagesMatchReference)
{
    // The fast parser defers irregular input to the reference, so even the
    // exception text must be the reference's.
    for (const char* name : {"truncated_entries.mtx", "truncated_value.mtx"}) {
        std::string ref_what, fast_what;
        try {
            read_matrix_market_reference_file(golden(name));
        } catch (const MatrixMarketError& e) {
            ref_what = e.what();
        }
        try {
            read_matrix_market_fast_file(golden(name), {});
        } catch (const MatrixMarketError& e) {
            fast_what = e.what();
        }
        ASSERT_FALSE(ref_what.empty()) << name;
        EXPECT_EQ(fast_what, ref_what) << name;
    }
}

// Chunk-boundary corner cases: tiny chunk_bytes forces splits to land
// inside entry lines, so the newline alignment is what keeps entries whole.
TEST(FastParseCorners, EntryStraddlingEveryPossibleChunkSplit)
{
    const auto m = make_uniform_random(60, 60, 400, 43);
    const std::string text = to_mtx(m);
    const CooMatrix ref = parse_reference(text);
    for (const std::size_t chunk_bytes : {1u, 2u, 3u, 7u, 16u, 64u, 4096u}) {
        ParseOptions opt;
        opt.threads = 4;
        opt.chunk_bytes = chunk_bytes;
        expect_identical(read_matrix_market_fast(text, opt), ref,
                         "chunk_bytes=" + std::to_string(chunk_bytes));
    }
}

TEST(FastParseCorners, FileNotEndingInNewline)
{
    std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "3 3 2\n"
        "1 1 2.5\n"
        "3 3 -1.75"; // no trailing newline
    check_differential(text, "no trailing newline");

    ParseOptions tiny;
    tiny.threads = 3;
    tiny.chunk_bytes = 4;
    expect_identical(read_matrix_market_fast(text, tiny),
                     parse_reference(text), "no trailing newline, tiny chunks");
}

TEST(FastParseCorners, CrlfAndTrailingBlankLines)
{
    const std::string crlf =
        "%%MatrixMarket matrix coordinate real general\r\n"
        "% comment\r\n"
        "2 3 2\r\n"
        "1 2 4.5\r\n"
        "2 3 -8.125\r\n";
    check_differential(crlf, "crlf");

    const std::string trailing_blanks =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n"
        "2 2 2.0\n"
        "\n"
        "   \n";
    check_differential(trailing_blanks, "trailing blank lines");
}

TEST(FastParseCorners, WhitespaceVariantsInsideEntries)
{
    const std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "4 4 4\n"
        "  1 1 1.0\n"
        "2\t2\t2e0\n"
        "3  3   +3.0\n"
        "4 4 4.0   \n";
    // "+3.0": from_chars rejects the sign, so the fast path must fall back
    // to the reference — both still agree.
    check_differential(text, "whitespace variants");
}

TEST(FastParseCorners, MalformedInputsThrowFromBothParsers)
{
    const char* cases[] = {
        // out-of-bounds index
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
        // missing value
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
        // non-numeric garbage
        "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
        // blank line inside the entry list
        "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n\n2 2 2.0\n",
        // declared more entries than present
        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n2 2 2.0\n",
        // bad banner
        "3 3 0\n",
        // empty input
        "",
    };
    for (const char* text : cases) {
        EXPECT_THROW(parse_reference(text), MatrixMarketError) << text;
        EXPECT_THROW(read_matrix_market_fast(std::string_view(text), {}),
                     MatrixMarketError)
            << text;
    }
}

TEST(FastParseCorners, ParserAgreementOnNumericOddities)
{
    // Token shapes where std::from_chars and istream num_get disagree on
    // how much to consume (dangling exponent, hexfloat prefix, trailing
    // letters): whatever the reference does — accept with some value or
    // throw — the fast parser must do the same.
    const char* values[] = {"1.5e", "1.5e+", "0x10", "1.5x", "2.5.5",
                            "inf",  "nan",   "1e999"};
    for (const char* value : values) {
        const std::string text =
            "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 " +
            std::string(value) + "\n";
        CooMatrix ref(1, 1);
        bool ref_threw = false;
        try {
            ref = parse_reference(text);
        } catch (const MatrixMarketError&) {
            ref_threw = true;
        }
        if (ref_threw) {
            EXPECT_THROW(read_matrix_market_fast(text, {}), MatrixMarketError)
                << value;
        } else {
            expect_identical(read_matrix_market_fast(text, {}), ref, value);
        }
    }
}

TEST(FastParseCorners, ExtraEntriesBeyondCountIgnoredLikeReference)
{
    // The reference reads exactly `entries` lines and ignores the rest; the
    // fast path detects the surplus and defers to the reference.
    const std::string text =
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "1 1 1.0\n"
        "2 2 2.0\n";
    check_differential(text, "surplus entries");
    EXPECT_EQ(read_matrix_market_fast(text, {}).nnz(), 1u);
}

TEST(FastParseCorners, LargeFileRoundTripThroughDisk)
{
    // End to end through the mmap path: write a six-figure-entry file to
    // disk, read it back with both parsers.
    const auto m = make_uniform_random(20'000, 20'000, 120'000, 7);
    const std::string path = ::testing::TempDir() + "/serpens_fastparse.mtx";
    write_matrix_market_file(path, m);
    const CooMatrix ref = read_matrix_market_reference_file(path);
    ParseOptions opt;
    opt.threads = 0;
    expect_identical(read_matrix_market_fast_file(path, opt), ref,
                     "mmap large file");
    std::remove(path.c_str());
}

TEST(FastParseCorners, MissingFileThrows)
{
    EXPECT_THROW(read_matrix_market_fast_file("/nonexistent/dir/x.mtx", {}),
                 MatrixMarketError);
}

} // namespace
} // namespace serpens::sparse
