// Tests for the dataset-shaping utilities added for stand-in fidelity:
// the clustered generator, hub-degree capping, hub injection, and the
// bit-mixing fold.
#include <gtest/gtest.h>

#include <set>

#include "datasets/table3.h"
#include "sparse/convert.h"
#include "sparse/generators.h"

namespace serpens::datasets {
namespace {

using sparse::CooMatrix;
using sparse::CsrMatrix;
using sparse::index_t;
using sparse::nnz_t;

// --- make_clustered ---

TEST(Clustered, DimensionsAndTarget)
{
    const CooMatrix m = sparse::make_clustered(4096, 100'000, 8, 64, 0.3, 1);
    EXPECT_EQ(m.rows(), 4096u);
    EXPECT_EQ(m.cols(), 4096u);
    EXPECT_GT(m.nnz(), 60'000u);   // coalescing losses allowed
    EXPECT_LT(m.nnz(), 130'000u);  // overshoots at most one clique
}

TEST(Clustered, Deterministic)
{
    const CooMatrix a = sparse::make_clustered(1024, 10'000, 4, 32, 0.2, 7);
    const CooMatrix b = sparse::make_clustered(1024, 10'000, 4, 32, 0.2, 7);
    EXPECT_EQ(a.elements(), b.elements());
}

TEST(Clustered, PureCliquesAreBlockDiagonalish)
{
    // background = 0: every non-zero lies within clique_max of the diagonal.
    const index_t cmax = 16;
    const CooMatrix m = sparse::make_clustered(2048, 20'000, 4, cmax, 0.0, 3);
    for (const auto& t : m.elements()) {
        const auto r = static_cast<std::int64_t>(t.row);
        const auto c = static_cast<std::int64_t>(t.col);
        EXPECT_LT(std::abs(r - c), static_cast<std::int64_t>(cmax));
    }
}

TEST(Clustered, BackgroundSpreadsBeyondCliques)
{
    const CooMatrix m = sparse::make_clustered(4096, 40'000, 4, 16, 0.5, 5);
    std::size_t far = 0;
    for (const auto& t : m.elements()) {
        const auto r = static_cast<std::int64_t>(t.row);
        const auto c = static_cast<std::int64_t>(t.col);
        far += std::abs(r - c) >= 16;
    }
    EXPECT_GT(far, m.nnz() / 10);
}

TEST(Clustered, RejectsBadArguments)
{
    EXPECT_THROW(sparse::make_clustered(100, 100, 1, 8, 0.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(sparse::make_clustered(100, 100, 16, 8, 0.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(sparse::make_clustered(100, 100, 4, 200, 0.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(sparse::make_clustered(100, 100, 4, 8, 1.5, 1),
                 std::invalid_argument);
}

// --- cap_row_degree ---

TEST(CapRowDegree, EnforcesCap)
{
    const CooMatrix m = sparse::make_dense_rows(64, 4096, 2, 2000, 3);
    const nnz_t before = m.nnz();
    const CooMatrix capped = cap_row_degree(m, 100, 9);
    const CsrMatrix csr = sparse::to_csr(capped);
    // Each heavy row keeps `cap` entries plus its ~1/64 share of the
    // redistributed excess (~3700/64 ≈ 58) — far below the original ~2000.
    EXPECT_LE(csr.row_nnz(0), 220u);
    EXPECT_LE(csr.row_nnz(1), 220u);
    EXPECT_LT(csr.max_row_nnz(), 250u);
    // NNZ preserved up to coalescing collisions.
    EXPECT_GT(capped.nnz(), before * 9 / 10);
}

TEST(CapRowDegree, NoOpWhenUnderCap)
{
    CooMatrix m = sparse::make_banded(128, 4, 5);
    m.sort_row_major();
    CooMatrix capped = cap_row_degree(m, 100, 1);
    capped.sort_row_major();
    EXPECT_EQ(capped.elements(), m.elements());
}

TEST(CapRowDegree, ColumnsPreserved)
{
    const CooMatrix m = sparse::make_dense_rows(32, 512, 1, 400, 7);
    const CooMatrix capped = cap_row_degree(m, 50, 11);
    // Multiset of columns is unchanged by relocation (up to coalescing).
    std::multiset<index_t> before, after;
    for (const auto& t : m.elements())
        before.insert(t.col);
    for (const auto& t : capped.elements())
        after.insert(t.col);
    // Coalescing can only remove entries.
    EXPECT_LE(after.size(), before.size());
    for (index_t c : after)
        EXPECT_TRUE(before.count(c) > 0);
}

TEST(CapRowDegree, RejectsZeroCap)
{
    const CooMatrix m = sparse::make_diagonal(8);
    EXPECT_THROW(cap_row_degree(m, 0, 1), std::invalid_argument);
}

// --- inject_hub_rows ---

TEST(InjectHubs, CreatesHubOfRequestedWeight)
{
    const CooMatrix m = sparse::make_uniform_random(2048, 2048, 100'000, 3);
    const double fracs[] = {0.01};
    const CooMatrix with = inject_hub_rows(m, fracs, 5);
    const CsrMatrix csr = sparse::to_csr(with);
    // Max row should now hold ~1% of nnz (coalescing loses a little).
    EXPECT_GT(csr.max_row_nnz(), static_cast<nnz_t>(0.006 * 100'000));
    EXPECT_LT(csr.max_row_nnz(), static_cast<nnz_t>(0.015 * 100'000));
}

TEST(InjectHubs, PreservesNnzUpToCoalescing)
{
    const CooMatrix m = sparse::make_uniform_random(1024, 1024, 50'000, 4);
    const double fracs[] = {0.005, 0.002};
    const CooMatrix with = inject_hub_rows(m, fracs, 6);
    EXPECT_GT(with.nnz(), m.nnz() * 95 / 100);
    EXPECT_LE(with.nnz(), m.nnz());
    EXPECT_EQ(with.rows(), m.rows());
}

TEST(InjectHubs, RejectsOutOfRangeFraction)
{
    const CooMatrix m = sparse::make_diagonal(64);
    const double bad[] = {0.9};
    EXPECT_THROW(inject_hub_rows(m, bad, 1), std::invalid_argument);
}

// --- fold_square ---

TEST(FoldSquare, BitMixingBalancesPeResidues)
{
    // The regression this fold fixes: R-MAT hubs piling onto one `pair % P`
    // residue. After folding, the heaviest 1% of rows must not concentrate
    // on few residues.
    const CooMatrix g = sparse::make_rmat(14, 8, 11);
    const CooMatrix folded = fold_square(g, 12'000);
    const CsrMatrix csr = sparse::to_csr(folded);

    // Collect the 64 heaviest rows' PE residues (P = 128, pair = row/2).
    std::vector<std::pair<nnz_t, index_t>> rows;
    for (index_t r = 0; r < csr.rows(); ++r)
        rows.emplace_back(csr.row_nnz(r), r);
    std::sort(rows.rbegin(), rows.rend());
    std::set<index_t> residues;
    for (int i = 0; i < 64; ++i)
        residues.insert((rows[static_cast<std::size_t>(i)].second / 2) % 128);
    // With mixing, 64 heavy rows spread over >= 24 distinct PEs out of 128.
    EXPECT_GE(residues.size(), 24u);
}

TEST(FoldSquare, NonPow2DomainLeftUnscrambled)
{
    CooMatrix m(10, 10);
    m.add(7, 3, 1.0f);
    const CooMatrix folded = fold_square(m, 5);
    EXPECT_EQ(folded.elements()[0].row, 2u);  // 7 % 5, identity scramble
    EXPECT_EQ(folded.elements()[0].col, 3u);
}

TEST(FoldSquare, PreservesValues)
{
    CooMatrix m(8, 8);
    m.add(1, 2, 42.0f);
    const CooMatrix folded = fold_square(m, 8);
    ASSERT_EQ(folded.nnz(), 1u);
    EXPECT_FLOAT_EQ(folded.elements()[0].val, 42.0f);
}

} // namespace
} // namespace serpens::datasets
