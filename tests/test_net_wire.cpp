// Wire-format lockdown for the network front-end.
//
// Contracts pinned here:
//   - WireWriter/WireReader round-trip every scalar shape; truncated
//     buffers and trailing bytes are ProtocolError, never UB.
//   - Every protocol message round-trips encode -> decode bit-exactly.
//   - open_reply maps the three response statuses onto the error taxonomy.
//   - write_frame/read_frame round-trip over a real socket; oversized
//     length prefixes are refused BEFORE allocation; EOF mid-frame is an
//     error while EOF at a frame boundary is a clean close.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "net/framing.h"
#include "net/protocol.h"
#include "net/wire.h"

namespace serpens {
namespace {

TEST(NetWire, ScalarsRoundTrip)
{
    net::WireWriter w;
    w.u8(7);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.f32(-1.5f);
    w.f64(3.14159);
    w.str("serpens");
    w.f32_array({1.0f, -0.0f, 2.5f});
    w.u32_array({9, 8, 7});
    const std::vector<std::uint8_t> buf = w.take();

    net::WireReader r(buf);
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.f32(), -1.5f);
    EXPECT_EQ(r.f64(), 3.14159);
    EXPECT_EQ(r.str(), "serpens");
    const std::vector<float> f = r.f32_array();
    ASSERT_EQ(f.size(), 3u);
    // Bit-exact, including the negative zero.
    const float expected[3] = {1.0f, -0.0f, 2.5f};
    EXPECT_EQ(std::memcmp(f.data(), expected, sizeof expected), 0);
    EXPECT_EQ(r.u32_array(), (std::vector<std::uint32_t>{9, 8, 7}));
    EXPECT_NO_THROW(r.require_done());
}

TEST(NetWire, TruncationAndTrailingBytesThrow)
{
    net::WireWriter w;
    w.u32(42);
    const std::vector<std::uint8_t> buf = w.take();

    net::WireReader short_r(buf.data(), 2);
    EXPECT_THROW(short_r.u32(), net::ProtocolError);

    net::WireReader r(buf);
    (void)r.u8();
    EXPECT_THROW(r.require_done(), net::ProtocolError);

    // A length prefix larger than the remaining bytes must throw before
    // any allocation happens.
    net::WireWriter evil;
    evil.u32(std::numeric_limits<std::uint32_t>::max());
    const std::vector<std::uint8_t> evil_buf = evil.take();
    net::WireReader evil_r(evil_buf);
    EXPECT_THROW(evil_r.f32_array(), net::ProtocolError);
    net::WireReader evil_s(evil_buf);
    EXPECT_THROW(evil_s.str(), net::ProtocolError);
}

TEST(NetWire, ProtocolMessagesRoundTrip)
{
    net::AdmitRequest admit;
    admit.name = "web";
    admit.rows = 100;
    admit.cols = 80;
    admit.row_idx = {0, 5, 99};
    admit.col_idx = {1, 6, 79};
    admit.values = {1.0f, -2.0f, 0.5f};
    {
        const std::vector<std::uint8_t> frame = net::encode_admit(admit);
        net::WireReader r(frame);
        EXPECT_EQ(net::decode_request_type(r), net::RequestType::kAdmit);
        const net::AdmitRequest back = net::decode_admit(r);
        EXPECT_EQ(back.name, "web");
        EXPECT_EQ(back.rows, 100u);
        EXPECT_EQ(back.row_idx, admit.row_idx);
        EXPECT_EQ(back.col_idx, admit.col_idx);
        EXPECT_EQ(back.values, admit.values);
        const sparse::CooMatrix m = net::admit_to_coo(back);
        EXPECT_EQ(m.rows(), 100u);
        EXPECT_EQ(m.nnz(), 3u);
    }

    // Mismatched triplet arrays fail conversion, out-of-range indices fail
    // the COO bounds check.
    net::AdmitRequest bad = admit;
    bad.values.pop_back();
    EXPECT_THROW(net::admit_to_coo(bad), net::ProtocolError);
    net::AdmitRequest oob = admit;
    oob.row_idx[0] = 100;
    EXPECT_THROW(net::admit_to_coo(oob), std::invalid_argument);

    net::SpmvRequest spmv;
    spmv.name = "web";
    spmv.x = {1.0f, 2.0f};
    spmv.y = {0.0f};
    spmv.alpha = 1.25f;
    spmv.beta = -0.5f;
    spmv.deadline_ms = 12.5;
    {
        const std::vector<std::uint8_t> frame = net::encode_spmv(spmv);
        net::WireReader r(frame);
        EXPECT_EQ(net::decode_request_type(r), net::RequestType::kSpmv);
        const net::SpmvRequest back = net::decode_spmv(r);
        EXPECT_EQ(back.name, "web");
        EXPECT_EQ(back.x, spmv.x);
        EXPECT_EQ(back.y, spmv.y);
        EXPECT_EQ(back.alpha, 1.25f);
        EXPECT_EQ(back.beta, -0.5f);
        EXPECT_EQ(back.deadline_ms, 12.5);
    }

    net::SetBatchingRequest sb;
    sb.max_batch = 4;
    sb.slo_ms = 20.0;
    sb.batch_wait_ms = 80.0;
    sb.max_queue_depth = 256;
    {
        const std::vector<std::uint8_t> frame = net::encode_set_batching(sb);
        net::WireReader r(frame);
        EXPECT_EQ(net::decode_request_type(r),
                  net::RequestType::kSetBatching);
        const net::SetBatchingRequest back = net::decode_set_batching(r);
        EXPECT_EQ(back.max_batch, 4u);
        EXPECT_EQ(back.slo_ms, 20.0);
        EXPECT_EQ(back.batch_wait_ms, 80.0);
        EXPECT_EQ(back.max_queue_depth, 256u);
    }

    {
        const std::vector<std::uint8_t> frame = net::encode_evict("web");
        net::WireReader r(frame);
        EXPECT_EQ(net::decode_request_type(r), net::RequestType::kEvict);
        EXPECT_EQ(net::decode_evict(r), "web");
    }

    // Unknown type bytes are ProtocolError, not a silent enum.
    net::WireWriter junk;
    junk.u8(99);
    const std::vector<std::uint8_t> junk_frame = junk.take();
    net::WireReader junk_r(junk_frame);
    EXPECT_THROW(net::decode_request_type(junk_r), net::ProtocolError);
}

TEST(NetWire, SpmvReplyRoundTripsAllTelemetry)
{
    serve::SpmvResult result;
    result.run.y = {1.0f, -2.0f, 3.5f};
    result.run.time_ms = 0.75;
    result.run.cycles.x_load_cycles = 11;
    result.run.cycles.compute_cycles = 22;
    result.run.cycles.y_phase_cycles = 33;
    result.run.cycles.fill_cycles = 44;
    result.run.cycles.total_slots = 55;
    result.run.cycles.padding_slots = 5;
    result.queue_ms = 1.5;
    result.service_ms = 2.5;
    result.device_batch_ms = 4.0;
    result.device_amortized_ms = 0.5;
    result.batch_width = 8;
    result.sequence = 123;

    net::WireWriter w;
    net::encode_spmv_reply(w, result);
    const std::vector<std::uint8_t> buf = w.take();
    net::WireReader r(buf);
    const net::SpmvReply back = net::decode_spmv_reply(r);
    EXPECT_EQ(back.y, result.run.y);
    EXPECT_EQ(back.time_ms, 0.75);
    EXPECT_EQ(back.queue_ms, 1.5);
    EXPECT_EQ(back.service_ms, 2.5);
    EXPECT_EQ(back.device_batch_ms, 4.0);
    EXPECT_EQ(back.device_amortized_ms, 0.5);
    EXPECT_EQ(back.batch_width, 8u);
    EXPECT_EQ(back.sequence, 123u);
    EXPECT_EQ(back.x_load_cycles, 11u);
    EXPECT_EQ(back.compute_cycles, 22u);
    EXPECT_EQ(back.y_phase_cycles, 33u);
    EXPECT_EQ(back.fill_cycles, 44u);
    EXPECT_EQ(back.total_slots, 55u);
    EXPECT_EQ(back.padding_slots, 5u);
}

TEST(NetWire, OpenReplyMapsStatusesOntoTheErrorTaxonomy)
{
    {
        net::WireWriter body;
        body.u8(1);
        // The reader borrows the frame's bytes — keep the frame alive.
        const std::vector<std::uint8_t> frame =
            net::encode_ok(std::move(body));
        net::WireReader r = net::open_reply(frame);
        EXPECT_EQ(r.u8(), 1u);
        EXPECT_NO_THROW(r.require_done());
    }
    EXPECT_THROW(
        (void)net::open_reply(
            net::encode_error(net::Status::kOverloaded, "full")),
        net::OverloadedError);
    EXPECT_THROW((void)net::open_reply(
                     net::encode_error(net::Status::kError, "boom")),
                 net::RemoteError);
    EXPECT_THROW(
        (void)net::open_reply(
            net::encode_error(net::Status::kDeadlineExceeded, "late")),
        net::DeadlineExceededError);
    try {
        (void)net::open_reply(net::encode_error(net::Status::kError,
                                                "exact message"));
        FAIL() << "expected RemoteError";
    } catch (const net::RemoteError& e) {
        EXPECT_STREQ(e.what(), "exact message");
    }
}

// --- framing over a real socket ---

struct SocketPair {
    net::Socket a, b;
    SocketPair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = net::Socket(fds[0]);
        b = net::Socket(fds[1]);
    }
};

TEST(NetWire, FramesRoundTripOverASocket)
{
    SocketPair pair;
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    net::write_frame(pair.a, payload);
    net::write_frame(pair.a, {});  // empty frames are legal
    const auto first = net::read_frame(pair.b);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, payload);
    const auto second = net::read_frame(pair.b);
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->empty());
}

TEST(NetWire, OversizedLengthPrefixIsRefusedBeforeAllocation)
{
    SocketPair pair;
    const std::uint32_t evil = net::kMaxFrameBytes + 1;
    std::uint8_t header[4];
    std::memcpy(header, &evil, sizeof evil);
    ASSERT_EQ(::send(pair.a.fd(), header, sizeof header, 0), 4);
    EXPECT_THROW((void)net::read_frame(pair.b), net::ProtocolError);
}

TEST(NetWire, SetTimeoutZeroClearsAnEarlierDeadline)
{
    // Regression: set_timeout_ms(0) must RESTORE blocking mode, not leave
    // the old deadline armed. A 50 ms deadline fires on a silent peer; the
    // same socket, cleared back to 0, then survives a reply that arrives
    // well after the old deadline would have expired.
    SocketPair pair;
    pair.b.set_timeout_ms(50);
    EXPECT_THROW((void)net::read_frame(pair.b), net::TimeoutError);

    pair.b.set_timeout_ms(0);
    std::thread writer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        net::write_frame(pair.a, {9, 9, 9});
    });
    const auto frame = net::read_frame(pair.b);
    writer.join();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, (std::vector<std::uint8_t>{9, 9, 9}));
}

TEST(NetWire, EofMidFrameThrowsButCleanEofIsNullopt)
{
    {
        SocketPair pair;
        // Header promises 100 bytes; only 3 arrive before the close.
        const std::uint32_t n = 100;
        std::uint8_t header[4];
        std::memcpy(header, &n, sizeof n);
        ASSERT_EQ(::send(pair.a.fd(), header, sizeof header, 0), 4);
        const std::uint8_t partial[3] = {1, 2, 3};
        ASSERT_EQ(::send(pair.a.fd(), partial, sizeof partial, 0), 3);
        pair.a.close();
        EXPECT_THROW((void)net::read_frame(pair.b), net::ProtocolError);
    }
    {
        SocketPair pair;
        pair.a.close();
        EXPECT_EQ(net::read_frame(pair.b), std::nullopt);
    }
}

} // namespace
} // namespace serpens
