// PageRank on an R-MAT graph via repeated accelerator SpMV — the graph-
// analytics workload the paper's introduction motivates, using the
// serpens::apps library.
//
//   $ ./pagerank [scale] [iterations]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "apps/pagerank.h"
#include "sparse/generators.h"

int main(int argc, char** argv)
{
    using namespace serpens;

    const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 14;
    const int iterations = argc > 2 ? std::atoi(argv[2]) : 20;

    const sparse::CooMatrix graph = sparse::make_rmat(scale, 16, 7);
    std::printf("pagerank: %u vertices, %llu edges, <= %d iterations\n",
                graph.rows(), static_cast<unsigned long long>(graph.nnz()),
                iterations);

    const core::Accelerator acc(core::SerpensConfig::a16());
    apps::PageRankOptions options;
    options.max_iterations = iterations;
    options.tolerance = 1e-9;
    const apps::PageRankResult result = apps::pagerank(acc, graph, options);

    const double mass =
        std::accumulate(result.rank.begin(), result.rank.end(), 0.0);
    std::printf("converged: %d iterations, L1 delta %.3e, rank mass %.6f\n",
                result.iterations, result.delta, mass);

    // Top-5 vertices.
    std::vector<std::size_t> order(result.rank.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return result.rank[a] > result.rank[b];
                      });
    std::printf("top vertices:");
    for (int i = 0; i < 5; ++i) {
        const std::size_t v = order[static_cast<std::size_t>(i)];
        std::printf(" v%zu(%.2e)", v, static_cast<double>(result.rank[v]));
    }
    std::printf("\nmodeled accelerator time: %.3f ms total (%.3f ms/iter)\n",
                result.modeled_ms, result.modeled_ms / result.iterations);
    return std::abs(mass - 1.0) < 1e-2 ? 0 : 1;
}
