// Conjugate-gradient Poisson solve with the accelerator doing every A*p —
// the "linear systems solvers in scientific computing" use case from the
// paper's introduction.
//
//   $ ./cg_solver [n] [max_iters]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/dense_ops.h"
#include "core/accelerator.h"
#include "sparse/generators.h"

int main(int argc, char** argv)
{
    using namespace serpens;

    const sparse::index_t n =
        argc > 1 ? static_cast<sparse::index_t>(std::atol(argv[1])) : 100'000;
    const int max_iters = argc > 2 ? std::atoi(argv[2]) : 200;

    // Shifted 1-D Poisson operator (SPD tridiagonal). The shift keeps the
    // condition number O(1) so CG converges in tens of iterations at any n
    // (the unshifted Poisson operator needs O(n) iterations). The exact
    // solution is x* = all-ones, so b = A * x* is easy to form.
    const sparse::CooMatrix a = sparse::make_tridiagonal_spd(n, 0.5f);
    const core::Accelerator acc(core::SerpensConfig::a16());
    const core::PreparedMatrix prepared = acc.prepare(a);

    const std::vector<float> ones(n, 1.0f);
    const std::vector<float> zeros(n, 0.0f);
    std::vector<float> b = acc.run(prepared, ones, zeros).y;

    std::printf("cg: n = %u, nnz = %llu\n", n,
                static_cast<unsigned long long>(a.nnz()));

    // Conjugate gradient.
    std::vector<float> x(n, 0.0f);
    std::vector<float> r = b;           // r = b - A*0
    std::vector<float> p = r;
    double rs_old = baselines::dot(r, r);
    const double rs0 = rs_old;
    double total_ms = 0.0;
    int iters = 0;

    for (; iters < max_iters; ++iters) {
        const core::RunResult ap_run = acc.run(prepared, p, zeros);
        total_ms += ap_run.time_ms;
        const std::vector<float>& ap = ap_run.y;

        const double alpha = rs_old / baselines::dot(p, ap);
        baselines::axpy(static_cast<float>(alpha), p, x);
        baselines::axpy(static_cast<float>(-alpha), ap, r);

        const double rs_new = baselines::dot(r, r);
        if (iters % 25 == 0)
            std::printf("  iter %3d: |r| = %.3e\n", iters,
                        std::sqrt(rs_new));
        if (std::sqrt(rs_new / rs0) < 1e-5) {
            rs_old = rs_new;
            ++iters;
            break;
        }
        const double beta = rs_new / rs_old;
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] = r[i] + static_cast<float>(beta) * p[i];
        rs_old = rs_new;
    }

    // Error against the known solution.
    double max_err = 0.0;
    for (float v : x)
        max_err = std::max(max_err, std::abs(static_cast<double>(v) - 1.0));
    std::printf("converged in %d iterations, |r|/|r0| = %.2e, max|x-1| = %.2e\n",
                iters, std::sqrt(rs_old / rs0), max_err);
    std::printf("modeled accelerator time: %.2f ms (%.4f ms per SpMV)\n",
                total_ms, total_ms / (iters + 1));
    return max_err < 1e-2 ? 0 : 1;
}
