// Channel scalability (paper §4.4): sweep the number of HBM channels
// allocated to the sparse matrix and watch throughput scale — the
// memory-centric PE design is what makes this a config change rather than
// a redesign.
//
//   $ ./channel_scaling [nnz]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/table.h"
#include "core/accelerator.h"
#include "core/resource_model.h"
#include "sparse/generators.h"

int main(int argc, char** argv)
{
    using namespace serpens;

    const sparse::nnz_t nnz =
        argc > 1 ? static_cast<sparse::nnz_t>(std::atoll(argv[1])) : 2'000'000;
    const sparse::index_t n = 100'000;
    const sparse::CooMatrix m = sparse::make_uniform_random(n, n, nnz, 3);

    std::printf("channel scaling on %u x %u, %llu nnz\n\n", n, n,
                static_cast<unsigned long long>(m.nnz()));

    analysis::TextTable table({"HA", "HBM ch", "BW GB/s", "PEs", "time ms",
                               "GFLOP/s", "URAMs", "DSPs"});

    std::vector<float> x(n, 1.0f), y(n, 0.0f);
    for (unsigned ha : {4u, 8u, 16u, 24u, 28u}) {
        core::SerpensConfig cfg = core::SerpensConfig::a16();
        cfg.arch.ha_channels = ha;
        // Frequencies from the paper's two closed designs; intermediate
        // points keep the A16 clock.
        if (ha == 24)
            cfg = core::SerpensConfig::a24();
        if (ha == 28) {
            cfg = core::SerpensConfig::a24();
            cfg.arch.ha_channels = 28;
        }

        const core::Accelerator acc(cfg);
        const auto prepared = acc.prepare(m);
        const auto r = acc.run(prepared, x, y);
        const auto res = core::estimate_resources(cfg);
        table.add_row({std::to_string(ha),
                       std::to_string(cfg.total_hbm_channels()),
                       analysis::fmt(cfg.utilized_bandwidth_gbps(), 0),
                       std::to_string(cfg.arch.total_pes()),
                       analysis::fmt(r.time_ms, 4),
                       analysis::fmt(r.metrics.gflops, 2),
                       std::to_string(res.urams), std::to_string(res.dsps)});
    }

    std::ostringstream os;
    table.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("\nthroughput scales with HA until the vector phases and fills"
                " dominate (Amdahl).\n");
    return 0;
}
