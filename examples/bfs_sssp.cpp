// BFS and SSSP through the generalized-semiring substrate (the GraphLily-
// style overlay workloads, paper §2.2), using the serpens::apps library.
//
//   $ ./bfs_sssp [scale]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/traversal.h"
#include "baselines/graphlily.h"
#include "baselines/semiring.h"
#include "sparse/convert.h"
#include "sparse/generators.h"
#include "util/rng.h"

int main(int argc, char** argv)
{
    using namespace serpens;

    const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 12;

    // Directed R-MAT graph with weights in [1, 9].
    sparse::CooMatrix g = sparse::make_rmat(scale, 8, 11);
    {
        Rng rng(13);
        for (auto& e : g.elements())
            e.val = 1.0f + static_cast<float>(rng.next_below(9));
    }
    // Reversed adjacency: row v lists v's in-neighbours.
    const sparse::CsrMatrix rev = sparse::to_csr(g.transposed());
    std::printf("graph: %u vertices, %llu edges\n", rev.rows(),
                static_cast<unsigned long long>(rev.nnz()));

    // --- BFS from vertex 0 ---
    const std::vector<int> levels = apps::bfs_levels(rev, 0);
    std::size_t reached = 0;
    int depth = 0;
    for (int l : levels) {
        if (l != apps::kUnreached) {
            ++reached;
            depth = std::max(depth, l);
        }
    }
    std::printf("bfs: reached %zu/%u vertices, depth %d\n", reached,
                rev.rows(), depth);

    // --- SSSP from vertex 0 ---
    const std::vector<float> dist = apps::sssp_distances(rev, 0);
    std::size_t settled = 0;
    float max_finite = 0.0f;
    for (float d : dist) {
        if (d < baselines::kMinPlusInf) {
            ++settled;
            max_finite = std::max(max_finite, d);
        }
    }
    std::printf("sssp: %zu vertices settled, max distance %.0f\n", settled,
                static_cast<double>(max_finite));

    // Reachability must agree between the two algorithms.
    for (sparse::index_t v = 0; v < rev.rows(); ++v) {
        if ((levels[v] != apps::kUnreached) !=
            (dist[v] < baselines::kMinPlusInf)) {
            std::printf("mismatch at vertex %u\n", v);
            return 1;
        }
    }
    std::printf("bfs/sssp reachability agree (OK)\n");

    const baselines::GraphLilyModel overlay;
    std::printf("modeled overlay SpMV time: %.3f ms per iteration\n",
                overlay.estimate_spmv_ms(rev.rows(), rev.cols(), rev.nnz()));
    return 0;
}
