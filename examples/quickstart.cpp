// Quickstart: build a sparse matrix, run SpMV on the simulated Serpens-A16
// accelerator, and check the result against the CPU reference.
//
//   $ ./quickstart
#include <cstdio>

#include "baselines/cpu_spmv.h"
#include "core/accelerator.h"
#include "sparse/convert.h"
#include "sparse/generators.h"

int main()
{
    using namespace serpens;

    // 1. A 10,000 x 10,000 random sparse matrix with ~200K non-zeros.
    const sparse::CooMatrix a =
        sparse::make_uniform_random(10'000, 10'000, 200'000, /*seed=*/42);
    std::printf("matrix: %u x %u, %llu non-zeros\n", a.rows(), a.cols(),
                static_cast<unsigned long long>(a.nnz()));

    // 2. A Serpens accelerator in the paper's A16 configuration
    //    (16 HBM channels for the matrix, 128 PEs, 223 MHz).
    const core::Accelerator acc(core::SerpensConfig::a16());

    // 3. Offline preprocessing: segmentation, PE distribution, index
    //    coalescing, and hazard-aware non-zero reordering.
    const core::PreparedMatrix prepared = acc.prepare(a);
    std::printf("encoded: %u segments, padding ratio %.4f\n",
                prepared.image().num_segments(),
                prepared.encode_stats().padding_ratio());

    // 4. Run y = 1.0 * A * x + 0.5 * y.
    std::vector<float> x(a.cols(), 1.0f);
    std::vector<float> y(a.rows(), 2.0f);
    const core::RunResult result = acc.run(prepared, x, y, 1.0f, 0.5f);

    std::printf("cycles: %llu (compute %llu, vectors %llu, fill %llu)\n",
                static_cast<unsigned long long>(result.cycles.total_cycles()),
                static_cast<unsigned long long>(result.cycles.compute_cycles),
                static_cast<unsigned long long>(result.cycles.x_load_cycles +
                                                result.cycles.y_phase_cycles),
                static_cast<unsigned long long>(result.cycles.fill_cycles));
    std::printf("modeled time: %.4f ms -> %.2f GFLOP/s, %.0f MTEPS\n",
                result.time_ms, result.metrics.gflops, result.metrics.mteps);

    // 5. Verify against the CPU reference.
    std::vector<float> expect(y);
    baselines::spmv_csr(sparse::to_csr(a), x, expect, 1.0f, 0.5f);
    double max_err = 0.0;
    for (std::size_t i = 0; i < expect.size(); ++i)
        max_err = std::max(max_err,
                           static_cast<double>(std::abs(result.y[i] - expect[i])));
    std::printf("max |serpens - cpu| = %.3g  %s\n", max_err,
                max_err < 1e-3 ? "(OK)" : "(MISMATCH)");
    return max_err < 1e-3 ? 0 : 1;
}
